package scenario

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/faults"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// RunConfig carries execution-level settings a spec does not fix: the
// seed, reproducibility, and protocol-simulation scale.
type RunConfig struct {
	// Seed drives topology synthesis and protocol randomness, passed
	// through verbatim (seed 0 is a real seed, as it was for the
	// pre-engine figure runners; TopologySpec.Seed overrides it per
	// scenario, where 0 means "inherit this seed").
	Seed int64
	// Reproducible forces cold, Dantzig-priced, serial-equivalent LP
	// solves, bit-for-bit reproducing the original harness's tables.
	Reproducible bool
	// QURuns averages this many simulation runs per protocol point
	// (0 = 5).
	QURuns int
	// QUDurationMS is the simulated length of each protocol run
	// (0 = 20000).
	QUDurationMS float64
	// Progress, when set, receives a point-completion event after each
	// work unit finishes. It is called concurrently from pool workers
	// and must be safe for concurrent use. Progress never travels over
	// the fleet wire; workers report their own.
	Progress func(Progress) `json:"-"`
}

// Settings is the serializable identity of a RunConfig: the fields
// that determine a run's output. Every Partial is stamped with the
// settings it executed under, and Merge rejects partials whose
// settings differ from its own — mixing seeds or solver modes across
// shards would silently corrupt the merged table.
type Settings struct {
	Seed         int64   `json:"seed,omitempty"`
	Reproducible bool    `json:"reproducible,omitempty"`
	QURuns       int     `json:"qu_runs,omitempty"`
	QUDurationMS float64 `json:"qu_duration_ms,omitempty"`
}

// Settings extracts the output-determining identity of the config
// (Progress handlers stay local to each process).
func (c RunConfig) Settings() Settings {
	return Settings{
		Seed:         c.Seed,
		Reproducible: c.Reproducible,
		QURuns:       c.QURuns,
		QUDurationMS: c.QUDurationMS,
	}
}

// RunConfig expands wire settings back into a run configuration.
func (s Settings) RunConfig() RunConfig {
	return RunConfig{
		Seed:         s.Seed,
		Reproducible: s.Reproducible,
		QURuns:       s.QURuns,
		QUDurationMS: s.QUDurationMS,
	}
}

func (c RunConfig) quRuns() int {
	if c.QURuns <= 0 {
		return 5
	}
	return c.QURuns
}

func (c RunConfig) quDuration() float64 {
	if c.QUDurationMS <= 0 {
		return 20000
	}
	return c.QUDurationMS
}

func (c RunConfig) lpOptions() lp.Options {
	if c.Reproducible {
		return lp.Options{}
	}
	return lp.Options{Pricing: lp.PricingPartial}
}

// Run validates the spec, expands its point-space, executes every point,
// and assembles the result table. It is the single-shard composition of
// the engine's three layers — partition (NewSpace/Shard), execute
// (Partition.Execute), merge (Space.Merge) — and produces output
// byte-identical to any sharded execution of the same spec and config.
func Run(spec *Spec, cfg RunConfig) (*Table, error) {
	space, err := NewSpace(spec, cfg)
	if err != nil {
		return nil, err
	}
	part, err := space.Shard(0, 1)
	if err != nil {
		return nil, err
	}
	partial, err := part.Execute()
	if err != nil {
		return nil, err
	}
	return space.Merge([]*Partial{partial})
}

func buildTopology(ts TopologySpec, cfg RunConfig) (*topology.Topology, error) {
	seed := ts.Seed
	if seed == 0 {
		seed = cfg.Seed
	}
	switch ts.Source {
	case "planetlab50":
		return topology.PlanetLab50(seed), nil
	case "daxlist161":
		return topology.Daxlist161(seed), nil
	case "synth":
		return topology.Generate(*ts.Synth, seed)
	case "file":
		f, err := os.Open(ts.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.Load(f)
	default:
		return nil, fmt.Errorf("unknown topology source %q", ts.Source)
	}
}

// systemPoint is one expanded entry of the system axes.
type systemPoint struct {
	axis SystemAxis
	spec plan.SystemSpec
}

func expandSystems(axes []SystemAxis, topoSize int) []systemPoint {
	var out []systemPoint
	for _, a := range axes {
		for _, s := range a.expand(topoSize) {
			out = append(out, systemPoint{axis: a, spec: s})
		}
	}
	return out
}

// poolWidth resolves a Workers setting to the effective pool width.
func poolWidth(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// buildPlacement runs the spec's placement algorithm.
func buildPlacement(spec *Spec, cfg RunConfig, topo *topology.Topology, sys quorum.System, workers int) (core.Placement, error) {
	switch spec.Placement.algorithm() {
	case plan.AlgoSingleton:
		return placement.Singleton(topo, sys.UniverseSize())
	case plan.AlgoManyToOne:
		return placement.ManyToOne(topo, sys, placement.ManyToOneConfig{
			LP:      cfg.lpOptions(),
			Workers: workers,
		})
	default:
		return placement.OneToOne(topo, sys, placement.Options{Workers: workers})
	}
}

// measureName maps a measure to its default column label.
func measureName(m string) string {
	switch m {
	case "response":
		return "response_ms"
	case "net":
		return "net_delay_ms"
	case "maxload":
		return "max_load"
	default:
		return m
	}
}

func formatMeasure(m string, v float64) string {
	if m == "maxload" {
		return f3(v)
	}
	return f2(v)
}

func evalMeasure(e *core.Eval, s core.Strategy, m string) float64 {
	switch m {
	case "net":
		return e.AvgNetworkDelay(s)
	case "maxload":
		return e.MaxNodeLoad(s)
	default:
		return e.AvgResponseTime(s)
	}
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ---------------------------------------------------------------- eval

func evalRow(spec *Spec, cfg RunConfig, topo *topology.Topology, pt systemPoint, workers int) ([]string, error) {
	sys, err := pt.spec.Build()
	if err != nil {
		return nil, err
	}
	f, err := buildPlacement(spec, cfg, topo, sys, workers)
	if err != nil {
		return nil, err
	}

	var row []string
	for _, rc := range spec.rowColumnsOrDefault() {
		switch rc {
		case "system":
			row = append(row, pt.axis.DisplayName())
		case "param":
			if pt.spec.Family == "singleton" {
				row = append(row, "-")
			} else {
				row = append(row, itoa(pt.spec.Param))
			}
		case "universe":
			row = append(row, itoa(sys.UniverseSize()))
		default:
			return nil, fmt.Errorf("unknown row column %q for eval scenario", rc)
		}
	}

	// Fault injection and strategy resolution are demand-independent
	// (the strategy LP minimizes network delay; alpha never enters it),
	// so both happen once; only the evaluator's alpha varies per demand.
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		return nil, err
	}
	e, down, err := applyFaults(spec.Faults, e)
	if err != nil {
		return nil, err
	}
	if down {
		for i := 0; i < len(spec.Demands)*len(spec.Strategies)*len(spec.Measures); i++ {
			row = append(row, "down")
		}
		return row, nil
	}
	strats := make([]core.Strategy, len(spec.Strategies))
	infeasible := make([]bool, len(spec.Strategies))
	for si, st := range spec.Strategies {
		strats[si], infeasible[si], err = resolveStrategy(st, e, spec, cfg, workers)
		if err != nil {
			return nil, err
		}
	}
	for _, d := range spec.Demands {
		e.Alpha = core.AlphaForDemand(d)
		for si := range spec.Strategies {
			for _, m := range spec.Measures {
				if infeasible[si] {
					row = append(row, "infeasible")
					continue
				}
				row = append(row, formatMeasure(m, evalMeasure(e, strats[si], m)))
			}
		}
	}
	return row, nil
}

func (s *Spec) rowColumnsOrDefault() []string {
	if s.RowColumns == nil {
		return []string{"system", "param", "universe"}
	}
	return s.RowColumns
}

// applyFaults injects the spec's slowdowns and failures into an
// evaluation; down reports that no quorum survived.
func applyFaults(fs *FaultSpec, e *core.Eval) (*core.Eval, bool, error) {
	if fs.empty() {
		return e, false, nil
	}
	var err error
	if fs.SlowFactor > 0 {
		slow, rerr := resolveSites(e.Topo, fs.SlowSites, fs.SlowRegion)
		if rerr != nil {
			return nil, false, rerr
		}
		e, err = faults.Slowdown(e, slow, fs.SlowFactor)
		if err != nil {
			return nil, false, err
		}
	}
	failed, err := resolveSites(e.Topo, fs.Sites, fs.Region)
	if err != nil {
		return nil, false, err
	}
	if fs.WorstCase > 0 {
		failed = append(failed, faults.WorstCaseFailure(e, fs.WorstCase)...)
	}
	if len(failed) == 0 {
		return e, false, nil
	}
	fe, err := faults.Apply(e, dedupe(failed))
	if err != nil {
		if errors.Is(err, quorum.ErrNoQuorumSurvives) {
			return nil, true, nil
		}
		return nil, false, err
	}
	return fe, false, nil
}

func resolveSites(topo *topology.Topology, names []string, region string) ([]int, error) {
	var out []int
	for _, name := range names {
		found := -1
		for i := 0; i < topo.Size(); i++ {
			if topo.Site(i).Name == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("no site named %q", name)
		}
		out = append(out, found)
	}
	if region != "" {
		hit := false
		for i := 0; i < topo.Size(); i++ {
			if topo.Site(i).Region == region {
				out = append(out, i)
				hit = true
			}
		}
		if !hit {
			return nil, fmt.Errorf("no sites in region %q", region)
		}
	}
	return out, nil
}

func dedupe(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != ids[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// resolveStrategy materializes a strategy name against an evaluation;
// "lp" solves the access-strategy LP under the spec's uniform capacity,
// with the spec's solver selection (reproducible runs pin dense).
func resolveStrategy(name string, e *core.Eval, spec *Spec, cfg RunConfig, workers int) (core.Strategy, bool, error) {
	switch name {
	case "closest":
		return core.ClosestStrategy{}, false, nil
	case "balanced":
		return core.BalancedStrategy{}, false, nil
	case "lp":
		c := spec.UniformCapacity
		if c == 0 {
			c = 1
		}
		caps := make([]float64, e.Topo.Size())
		for i := range caps {
			caps[i] = c
		}
		solver, err := strategy.ParseSolver(spec.Solver)
		if err != nil {
			return nil, false, err
		}
		if cfg.Reproducible {
			solver = strategy.SolverDense
		}
		opt, err := strategy.NewOptimizer(e, strategy.Config{
			LP:      cfg.lpOptions(),
			Solver:  solver,
			Workers: workers,
		})
		if err != nil {
			return nil, false, err
		}
		res, err := opt.Optimize(caps)
		if err != nil {
			if errors.Is(err, lp.ErrInfeasible) {
				return nil, true, nil
			}
			return nil, false, err
		}
		return res.Strategy, false, nil
	default:
		return nil, false, fmt.Errorf("unknown strategy %q", name)
	}
}

// ------------------------------------------------------------- protocol

// RepresentativeClients picks the k nodes whose expected network delay to
// the placement (under uniform access) is closest to the all-nodes
// average — the paper's §3 recipe for its ten client locations.
func RepresentativeClients(e *core.Eval, k int) ([]int, error) {
	n := e.Topo.Size()
	if k > n {
		return nil, fmt.Errorf("scenario: want %d client sites from %d nodes", k, n)
	}
	delays := make([]float64, n)
	sum := 0.0
	for v := 0; v < n; v++ {
		delays[v] = e.ClientResponseTime(core.BalancedStrategy{}, v)
		sum += delays[v]
	}
	avg := sum / float64(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := math.Abs(delays[idx[a]] - avg)
		db := math.Abs(delays[idx[b]] - avg)
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out, nil
}

// ---------------------------------------------------------------- sweep

func sweepCells(pt strategy.SweepPoint) []string {
	if pt.Infeasible {
		return []string{"infeasible", "infeasible"}
	}
	return []string{f2(pt.NetDelay), f2(pt.Response)}
}

// ------------------------------------------------------------- timeline

// runTimelineRows drives one planner through the spec's steps and
// returns the rows of the timeline table (a timeline is a single
// indivisible point of the space: each step re-plans the previous
// step's state).
func runTimelineRows(spec *Spec, cfg RunConfig, topo *topology.Topology, systems []systemPoint) ([][]string, error) {
	strat := plan.StratClosest
	if len(spec.Strategies) > 0 {
		strat = plan.StrategyKind(spec.Strategies[0])
	}
	demand := 0.0
	if len(spec.Demands) > 0 {
		demand = spec.Demands[0]
	}
	p, err := plan.New(topo, plan.Config{
		System:       systems[0].spec,
		Algorithm:    spec.Placement.algorithm(),
		Strategy:     strat,
		Demand:       demand,
		Reproducible: cfg.Reproducible,
		Workers:      spec.Workers,
		Solver:       spec.Solver,
	})
	if err != nil {
		return nil, err
	}

	var rows [][]string
	addRow := func(label string, res *plan.Snapshot, unreplanned string) {
		replanned := strings.Join(res.RecomputedNames(), ",")
		if replanned == "" {
			replanned = "-"
		}
		row := []string{label, itoa(p.Size()), f2(res.Response), f2(res.NetDelay), f3(res.MaxLoad), replanned}
		if spec.CompareUnreplanned {
			row = append(row, unreplanned)
		}
		rows = append(rows, row)
	}

	res, err := p.Plan()
	if err != nil {
		return nil, fmt.Errorf("initial plan: %w", err)
	}
	addRow("initial", res, "-")
	prev := res

	for _, step := range spec.Timeline {
		if err := applyStep(p, step); err != nil {
			return nil, fmt.Errorf("step %q: %w", step.Label, err)
		}
		res, err := p.Plan()
		if err != nil {
			return nil, fmt.Errorf("step %q: %w", step.Label, err)
		}
		unreplanned := "-"
		if spec.CompareUnreplanned {
			unreplanned, err = unreplannedCell(prev, step, res)
			if err != nil {
				return nil, fmt.Errorf("step %q: un-replanned evaluation: %w", step.Label, err)
			}
		}
		addRow(step.Label, res, unreplanned)
		prev = res
	}
	return rows, nil
}

// unreplannedCell evaluates the deployment that kept the previous
// snapshot's plan through the step. Site removals are replayed as node
// failures against the previous artifacts (faults.Unreplanned);
// demand/capacity/weight deltas evaluate the previous placement and
// strategy under the new conditions; metric edits and site additions
// have no previous-topology counterpart and render "-".
func unreplannedCell(prev *plan.Snapshot, step Step, cur *plan.Snapshot) (string, error) {
	if step.ScaleRTT != nil || len(step.AddSites) > 0 {
		return "-", nil
	}
	ev, err := core.NewEval(prev.Topology, prev.System, prev.Placement, cur.Alpha)
	if err != nil {
		return "", err
	}

	// Collect the removed sites as previous-snapshot indices.
	names := append([]string(nil), step.RemoveSites...)
	if step.RemoveRegion != "" {
		for i := 0; i < prev.Topology.Size(); i++ {
			if prev.Topology.Site(i).Region == step.RemoveRegion {
				names = append(names, prev.Topology.Site(i).Name)
			}
		}
	}
	var failed []int
	for _, name := range names {
		idx := -1
		for i := 0; i < prev.Topology.Size(); i++ {
			if prev.Topology.Site(i).Name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return "", fmt.Errorf("no site named %q in the previous snapshot", name)
		}
		failed = append(failed, idx)
	}

	if len(failed) == 0 {
		// Same membership: the un-replanned deployment runs under the
		// step's conditions (alpha and weights) with its old placement
		// and strategy.
		if cur.Weights != nil {
			if err := ev.SetClientWeights(cur.Weights); err != nil {
				return "", err
			}
		}
		return f2(ev.AvgResponseTime(prev.Strategy)), nil
	}

	// Failure: surviving clients keep their previous weights; the
	// strategy renormalizes over the surviving quorums.
	if prev.Weights != nil {
		if err := ev.SetClientWeights(prev.Weights); err != nil {
			return "", err
		}
	}
	fe, strat, err := faults.Unreplanned(ev, prev.Strategy, dedupe(failed))
	if errors.Is(err, quorum.ErrNoQuorumSurvives) {
		return "down", nil
	}
	if err != nil {
		return "", err
	}
	return f2(fe.AvgResponseTime(strat)), nil
}

// applyWeights materializes a weights step into a per-site weight
// vector: Default (0 = 1) everywhere, region entries override it, site
// entries override both. Every named region and site must exist.
func applyWeights(p *plan.Planner, ws *WeightsStep) error {
	if ws.Uniform {
		return p.SetClientWeights(nil)
	}
	def := ws.Default
	if def == 0 {
		def = 1
	}
	w := make([]float64, p.Size())
	regionHit := make(map[string]bool, len(ws.Regions))
	siteHit := make(map[string]bool, len(ws.Sites))
	for i := range w {
		w[i] = def
		site := p.Site(i)
		if rw, ok := ws.Regions[site.Region]; ok {
			w[i] = rw
			regionHit[site.Region] = true
		}
		if sw, ok := ws.Sites[site.Name]; ok {
			w[i] = sw
			siteHit[site.Name] = true
		}
	}
	for name := range ws.Regions {
		if !regionHit[name] {
			return fmt.Errorf("weights step: no sites in region %q", name)
		}
	}
	for name := range ws.Sites {
		if !siteHit[name] {
			return fmt.Errorf("weights step: no site named %q", name)
		}
	}
	return p.SetClientWeights(w)
}

// defaultPeerAccessMS stands in for an existing site's unrecorded
// access-link delay when splicing a new site in (the generators draw
// access delays from roughly 0.5–8 ms). It aliases the deploy layer's
// constant: an add-site step applied here and an add-site delta applied
// to a live deployment must synthesize identical RTTs, or the exported
// timeline stream (TimelineStream) would diverge from the engine's
// table.
const defaultPeerAccessMS = deploy.DefaultPeerAccessMS

func applyStep(p *plan.Planner, step Step) error {
	if step.Demand != nil {
		if err := p.SetDemand(*step.Demand); err != nil {
			return err
		}
	}
	if step.UniformCapacity != nil {
		if err := p.SetUniformCapacity(*step.UniformCapacity); err != nil {
			return err
		}
	}
	if len(step.SiteCapacity) > 0 {
		names := make([]string, 0, len(step.SiteCapacity))
		for name := range step.SiteCapacity {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			v := p.SiteIndex(name)
			if v < 0 {
				return fmt.Errorf("no site named %q", name)
			}
			if err := p.SetSiteCapacity(v, step.SiteCapacity[name]); err != nil {
				return err
			}
		}
	}
	if step.Weights != nil {
		if err := applyWeights(p, step.Weights); err != nil {
			return err
		}
	}
	if step.ScaleRTT != nil {
		factor, region := step.ScaleRTT.Factor, step.ScaleRTT.Region
		hit := false
		n := p.Size()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if region != "" && p.Site(u).Region != region && p.Site(v).Region != region {
					continue
				}
				hit = true
				if err := p.SetRTT(u, v, p.RTT(u, v)*factor); err != nil {
					return err
				}
			}
		}
		if !hit {
			return fmt.Errorf("scale_rtt matched no links (region %q)", region)
		}
	}
	for _, ns := range step.AddSites {
		site := topology.Site{Name: ns.Name, Region: ns.Region, Lat: ns.Lat, Lon: ns.Lon}
		rtts := make([]float64, p.Size())
		for i := range rtts {
			// AccessMS covers only the new site's end; existing sites'
			// access delays are not recorded on the topology, so the far
			// end gets a typical value from the generators' ranges.
			rtts[i] = topology.EstimateRTT(site, p.Site(i), 0, ns.AccessMS, defaultPeerAccessMS)
		}
		capacity := ns.Capacity
		if capacity == 0 {
			capacity = 1
		}
		if err := p.AddSite(site, rtts, capacity); err != nil {
			return err
		}
	}
	for _, name := range step.RemoveSites {
		if err := p.RemoveSite(name); err != nil {
			return err
		}
	}
	if step.RemoveRegion != "" {
		var names []string
		for i := 0; i < p.Size(); i++ {
			if p.Site(i).Region == step.RemoveRegion {
				names = append(names, p.Site(i).Name)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("no sites in region %q", step.RemoveRegion)
		}
		for _, name := range names {
			if err := p.RemoveSite(name); err != nil {
				return err
			}
		}
	}
	return nil
}
