package scenario

import (
	"fmt"
	"slices"
	"sort"
)

// Merge recombines partial tables into the full run output. The merge is
// pure and order-independent: partials may arrive in any order (shards
// complete whenever they complete), rows land by (point ordinal, row
// sequence), and the result is byte-identical to an unsharded Run of the
// same spec and config. Every point of the space must appear in exactly
// one partial; duplicates, gaps, and schema mismatches are errors.
func (s *Space) Merge(partials []*Partial) (*Table, error) {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario %q: merge: %s", s.spec.Name, fmt.Sprintf(format, args...))
	}
	columns := s.finalColumns()
	count := make([]int, len(s.points))
	type taggedRow struct {
		tag   RowTag
		cells []string
	}
	var rows []taggedRow
	for pi, p := range partials {
		if p == nil {
			return nil, fail("partial %d is nil", pi)
		}
		if p.Scenario != s.spec.Name {
			return nil, fail("partial %d is from scenario %q", pi, p.Scenario)
		}
		if p.Config != s.cfg.Settings() {
			return nil, fail("partial %d was executed under different settings (%+v, merging under %+v)",
				pi, p.Config, s.cfg.Settings())
		}
		if p.Table == nil {
			return nil, fail("partial %d has no table", pi)
		}
		if !slices.Equal(p.Table.Columns, columns) {
			return nil, fail("partial %d columns %v do not match %v", pi, p.Table.Columns, columns)
		}
		if len(p.Tags) != len(p.Table.Rows) {
			return nil, fail("partial %d has %d tags for %d rows", pi, len(p.Tags), len(p.Table.Rows))
		}
		executed := make(map[int]bool, len(p.Points))
		for _, ord := range p.Points {
			if ord < 0 || ord >= len(s.points) {
				return nil, fail("partial %d executed point %d of a %d-point space", pi, ord, len(s.points))
			}
			count[ord]++
			executed[ord] = true
		}
		for ri, tag := range p.Tags {
			if !executed[tag.Point] {
				return nil, fail("partial %d row %d is tagged with point %d it does not claim", pi, ri, tag.Point)
			}
			if len(p.Table.Rows[ri]) != len(columns) {
				return nil, fail("partial %d row %d has %d cells for %d columns", pi, ri, len(p.Table.Rows[ri]), len(columns))
			}
			rows = append(rows, taggedRow{tag: tag, cells: p.Table.Rows[ri]})
		}
	}
	for ord, c := range count {
		switch {
		case c == 0:
			return nil, fail("point %d (%s) missing from every partial", ord, s.points[ord].Label)
		case c > 1:
			return nil, fail("point %d (%s) executed %d times", ord, s.points[ord].Label, c)
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].tag.Point != rows[b].tag.Point {
			return rows[a].tag.Point < rows[b].tag.Point
		}
		return rows[a].tag.Seq < rows[b].tag.Seq
	})
	for i := 1; i < len(rows); i++ {
		if rows[i].tag == rows[i-1].tag {
			return nil, fail("row (point %d, seq %d) appears twice", rows[i].tag.Point, rows[i].tag.Seq)
		}
	}
	tb := &Table{
		ID:      s.spec.Name,
		Title:   s.spec.Title,
		Notes:   s.spec.Notes,
		Columns: append([]string(nil), columns...),
	}
	for _, r := range rows {
		tb.Rows = append(tb.Rows, r.cells)
	}
	return tb, nil
}

// Merge enumerates the spec's point-space and merges the partials
// against it — the offline counterpart of Space.Merge for callers that
// hold only the spec (quorumbench -merge, fleet coordinators restarted
// between dispatch and collection).
func Merge(spec *Spec, cfg RunConfig, partials []*Partial) (*Table, error) {
	space, err := NewSpace(spec, cfg)
	if err != nil {
		return nil, err
	}
	return space.Merge(partials)
}
