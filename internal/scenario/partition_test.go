package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// shardSpecs returns specs covering every kind, small enough to execute
// many times across shard counts.
func shardSpecs() []Spec {
	return []Spec{
		{
			Name:       "shard-eval",
			Kind:       KindEval,
			Topology:   smallSynth(),
			Systems:    []SystemAxis{{Family: "singleton"}, {Family: "grid", Params: []int{2, 3}}, {Family: "majority", Params: []int{1, 2}}},
			Demands:    []float64{0, 4000},
			Strategies: []string{"closest", "lp"},
			Measures:   []string{"response"},
		},
		{
			Name:       "shard-eval-faults",
			Kind:       KindEval,
			Topology:   smallSynth(),
			Systems:    []SystemAxis{{Family: "grid", Params: []int{2, 3}}, {Family: "bmajority", Params: []int{1}}},
			Demands:    []float64{0},
			Strategies: []string{"balanced"},
			Measures:   []string{"response", "net"},
			Faults:     &FaultSpec{WorstCase: 1},
		},
		{
			Name:     "shard-sweep",
			Kind:     KindSweep,
			Topology: smallSynth(),
			Systems:  []SystemAxis{{Family: "grid", Params: []int{2, 3}}},
			Sweep:    &SweepSpec{Points: 6, Demand: 8000, Variants: []string{"uniform", "nonuniform"}},
		},
		{
			Name:     "shard-iterate",
			Kind:     KindIterate,
			Topology: smallSynth(),
			Systems:  []SystemAxis{{Family: "grid", Params: []int{3}}},
			Iterate:  &IterateSpec{Points: 3, Demand: 4000, Candidates: []int{0, 3, 6}},
		},
		{
			Name:     "shard-protocol",
			Kind:     KindProtocol,
			Topology: smallSynth(),
			Protocol: &ProtocolSpec{Ts: []int{1, 2}, PerSite: []int{1, 2}, ClientSites: 5},
		},
		{
			Name:       "shard-timeline",
			Kind:       KindTimeline,
			Topology:   smallSynth(),
			Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
			Strategies: []string{"lp"},
			Demands:    []float64{8000},
			Timeline: []Step{
				{Label: "crowd", Weights: &WeightsStep{Regions: map[string]float64{"eu": 5}}},
				{Label: "uniform", Weights: &WeightsStep{Uniform: true}},
			},
		},
	}
}

func shardCfg() RunConfig {
	return RunConfig{Reproducible: true, QURuns: 1, QUDurationMS: 500}
}

// scramble reorders partials deterministically (reverse, then rotate by
// the shard count) so merges never see completion order == shard order.
func scramble(partials []*Partial, rot int) []*Partial {
	out := make([]*Partial, 0, len(partials))
	for i := len(partials) - 1; i >= 0; i-- {
		out = append(out, partials[i])
	}
	if len(out) > 0 {
		rot = rot % len(out)
		out = append(out[rot:], out[:rot]...)
	}
	return out
}

// TestPartitionExactCover: for every kind and shard counts 1..8, every
// point appears in exactly one shard, in ordinal order within it.
func TestPartitionExactCover(t *testing.T) {
	for _, spec := range shardSpecs() {
		spec := spec
		space, err := NewSpace(&spec, shardCfg())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		n := space.NumPoints()
		if n == 0 {
			t.Fatalf("%s: empty point-space", spec.Name)
		}
		for shards := 1; shards <= 8; shards++ {
			seen := make([]int, n)
			for si := 0; si < shards; si++ {
				part, err := space.Shard(si, shards)
				if err != nil {
					t.Fatalf("%s: shard %d/%d: %v", spec.Name, si, shards, err)
				}
				last := -1
				for _, pt := range part.Points {
					if pt.Ordinal <= last {
						t.Errorf("%s: shard %d/%d out of ordinal order", spec.Name, si, shards)
					}
					last = pt.Ordinal
					seen[pt.Ordinal]++
				}
			}
			for ord, c := range seen {
				if c != 1 {
					t.Errorf("%s: %d shards: point %d appears %d times", spec.Name, shards, ord, c)
				}
			}
		}
		if _, err := space.Shard(0, 0); err == nil {
			t.Errorf("%s: zero shard count accepted", spec.Name)
		}
		if _, err := space.Shard(3, 3); err == nil {
			t.Errorf("%s: out-of-range shard accepted", spec.Name)
		}
	}
}

// TestShardedRunByteIdentical is the core invariant: for every kind,
// any shard count 1..8, and any completion order, the merged table is
// byte-identical to the unsharded Run output — in reproducible mode and
// on the default fast path.
func TestShardedRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("executes every spec 9 times per mode")
	}
	for _, repro := range []bool{true, false} {
		cfg := shardCfg()
		cfg.Reproducible = repro
		for _, spec := range shardSpecs() {
			spec := spec
			base, err := Run(&spec, cfg)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			var baseText bytes.Buffer
			if err := base.Format(&baseText); err != nil {
				t.Fatal(err)
			}
			for shards := 1; shards <= 8; shards++ {
				space, err := NewSpace(&spec, cfg)
				if err != nil {
					t.Fatalf("%s: %v", spec.Name, err)
				}
				partials := make([]*Partial, shards)
				for si := 0; si < shards; si++ {
					part, err := space.Shard(si, shards)
					if err != nil {
						t.Fatal(err)
					}
					partials[si], err = part.Execute()
					if err != nil {
						t.Fatalf("%s: shard %d/%d: %v", spec.Name, si, shards, err)
					}
				}
				merged, err := space.Merge(scramble(partials, shards))
				if err != nil {
					t.Fatalf("%s: merge %d shards: %v", spec.Name, shards, err)
				}
				if !reflect.DeepEqual(base, merged) {
					t.Fatalf("%s (repro=%v): %d-shard merge differs from Run:\n%v\nvs\n%v",
						spec.Name, repro, shards, base.Rows, merged.Rows)
				}
				var mergedText bytes.Buffer
				if err := merged.Format(&mergedText); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseText.Bytes(), mergedText.Bytes()) {
					t.Fatalf("%s (repro=%v): %d-shard formatted output differs", spec.Name, repro, shards)
				}
			}
		}
	}
}

// TestPartialJSONRoundTrip: partials survive the fleet wire format and
// still merge byte-identically.
func TestPartialJSONRoundTrip(t *testing.T) {
	spec := shardSpecs()[0]
	cfg := shardCfg()
	base, err := Run(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpace(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	var decoded []*Partial
	for si := 0; si < shards; si++ {
		part, err := space.Shard(si, shards)
		if err != nil {
			t.Fatal(err)
		}
		p, err := part.Execute()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Partial
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, &back)
	}
	merged, err := Merge(&spec, cfg, scramble(decoded, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Rows, merged.Rows) {
		t.Fatalf("wire round trip changed rows:\n%v\nvs\n%v", base.Rows, merged.Rows)
	}
}

// TestMergeRejects: gaps, duplicates, foreign partials, and mangled
// schemas are all merge errors, not silent corruption.
func TestMergeRejects(t *testing.T) {
	spec := shardSpecs()[0]
	cfg := shardCfg()
	space, err := NewSpace(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	partials := make([]*Partial, shards)
	for si := 0; si < shards; si++ {
		part, err := space.Shard(si, shards)
		if err != nil {
			t.Fatal(err)
		}
		partials[si], err = part.Execute()
		if err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		in   []*Partial
		want string
	}{
		{"missing shard", []*Partial{partials[0]}, "missing from every partial"},
		{"duplicate shard", []*Partial{partials[0], partials[1], partials[1]}, "executed 2 times"},
		{"nil partial", []*Partial{partials[0], nil}, "is nil"},
	}
	for _, tc := range cases {
		_, err := space.Merge(tc.in)
		if err == nil {
			t.Errorf("%s: merge accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	foreign := *partials[0]
	foreign.Scenario = "someone-else"
	if _, err := space.Merge([]*Partial{&foreign, partials[1]}); err == nil ||
		!strings.Contains(err.Error(), "from scenario") {
		t.Errorf("foreign partial: %v", err)
	}

	mangled := *partials[0]
	mangledTable := *partials[0].Table
	mangledTable.Columns = append([]string{"bogus"}, mangledTable.Columns[1:]...)
	mangled.Table = &mangledTable
	if _, err := space.Merge([]*Partial{&mangled, partials[1]}); err == nil ||
		!strings.Contains(err.Error(), "columns") {
		t.Errorf("mangled columns: %v", err)
	}

	outOfRange := *partials[0]
	outOfRange.Points = append(append([]int(nil), partials[0].Points...), 999)
	if _, err := space.Merge([]*Partial{&outOfRange, partials[1]}); err == nil ||
		!strings.Contains(err.Error(), "999") {
		t.Errorf("out-of-range point: %v", err)
	}

	// A partial executed under different settings (another seed, another
	// solver mode) must be rejected, not silently mixed in.
	otherSeed := *partials[0]
	otherSeed.Config.Seed = 12345
	if _, err := space.Merge([]*Partial{&otherSeed, partials[1]}); err == nil ||
		!strings.Contains(err.Error(), "different settings") {
		t.Errorf("mismatched settings: %v", err)
	}
	fastMode := *partials[0]
	fastMode.Config.Reproducible = false
	if _, err := space.Merge([]*Partial{&fastMode, partials[1]}); err == nil ||
		!strings.Contains(err.Error(), "different settings") {
		t.Errorf("mismatched mode: %v", err)
	}
}

// TestProgressEvents: every point completion is reported exactly once
// with a consistent running count.
func TestProgressEvents(t *testing.T) {
	spec := shardSpecs()[0]
	cfg := shardCfg()
	var mu sync.Mutex
	var events []Progress
	cfg.Progress = func(ev Progress) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	space, err := NewSpace(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := space.Shard(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := part.Execute(); err != nil {
		t.Fatal(err)
	}
	if len(events) != space.NumPoints() {
		t.Fatalf("%d progress events for %d points", len(events), space.NumPoints())
	}
	seenDone := map[int]bool{}
	for _, ev := range events {
		if ev.Scenario != spec.Name || ev.Total != space.NumPoints() {
			t.Errorf("bad event %+v", ev)
		}
		if ev.Done < 1 || ev.Done > ev.Total || seenDone[ev.Done] {
			t.Errorf("bad done count %d", ev.Done)
		}
		seenDone[ev.Done] = true
	}
}

// TestTableCSVAndJSON covers the table wire formats: stable column
// order, quoting, and the row-arity check on decode.
func TestTableCSVAndJSON(t *testing.T) {
	tb := &Table{
		ID:      "t",
		Title:   "wire",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("plain", "1.50")
	tb.AddRow("with,comma", "2.00")

	var csvBuf bytes.Buffer
	if err := tb.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1.50\n\"with,comma\",2.00\n"
	if csvBuf.String() != want {
		t.Errorf("CSV = %q, want %q", csvBuf.String(), want)
	}

	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("JSON encoding not deterministic")
	}
	idx := bytes.Index(data, []byte(`"columns":["name","value"]`))
	if idx < 0 {
		t.Errorf("JSON lost column order: %s", data)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb.Rows, back.Rows) || !reflect.DeepEqual(tb.Columns, back.Columns) {
		t.Errorf("round trip changed table: %+v vs %+v", tb, back)
	}
	if err := back.UnmarshalJSON([]byte(`{"id":"x","columns":["a"],"rows":[["1","2"]]}`)); err == nil {
		t.Error("row arity mismatch accepted")
	}
}
