package placement

import (
	"fmt"
	"math"
	"sort"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/par"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// SearchMode selects the anchor-search algorithm for the one-to-one
// constructions.
type SearchMode int

const (
	// SearchAuto uses the pruned search when a score lower bound is
	// available and the candidate set is large enough to pay for the bound
	// computation; small searches stay exhaustive.
	SearchAuto SearchMode = iota
	// SearchExhaustive builds and scores every candidate anchor.
	SearchExhaustive
	// SearchPruned forces the probe-and-prune search whenever a bound is
	// available (ManyToOne has none and always searches exhaustively).
	SearchPruned
)

// Below this many candidates the bound computation costs more than the
// scoring it could skip.
const prunedMinCandidates = 64

// Probe at least this many anchors before pruning, so a bad first probe
// cannot neutralize the bound for the whole search.
const minProbes = 8

// Resolution of the tier-2 bound's Lipschitz grid over the client distance
// range: the bound loses at most (distance range)/boundGridSteps/2 of
// tightness versus evaluating every client exactly.
const boundGridSteps = 256

// anchorResult records one candidate anchor's outcome.
type anchorResult struct {
	f        core.Placement
	d        float64
	err      error // scoring error: fatal
	buildErr error // build or bound error: anchor skipped
	done     bool  // built and scored (false for pruned anchors)
}

// searchAnchorsBounded is the anchor search behind searchAnchors, plus an
// optional admissible per-anchor lower bound on the score. When pruning is
// enabled it scores a probe set first (median-seeded farthest-point order,
// so the probes cover the metric), then skips every remaining anchor whose
// bound strictly exceeds the incumbent. An anchor is pruned only if its
// true score provably exceeds the final minimum, and anchors tying the
// minimum are never pruned (their bound cannot strictly exceed it), so the
// merge — which scans in candidate order with a strict improvement test —
// returns exactly the placement the exhaustive scan would.
func searchAnchorsBounded(topo *topology.Topology, sys quorum.System, opts Options,
	bound func(v0 int, incumbent float64) (float64, error),
	build func(v0 int) (core.Placement, error)) (core.Placement, error) {

	candidates := opts.candidates(topo)
	usePruned := bound != nil && (opts.Search == SearchPruned ||
		(opts.Search == SearchAuto && len(candidates) >= prunedMinCandidates))

	results := make([]anchorResult, len(candidates))
	evalOne := func(i int) {
		f, err := build(candidates[i])
		if err != nil {
			results[i].buildErr = err // e.g. not enough capacity around this anchor
			return
		}
		d, err := score(topo, sys, f, opts)
		if err != nil {
			results[i].err = err
			return
		}
		results[i] = anchorResult{f: f, d: d, done: true}
	}

	if !usePruned {
		par.For(len(candidates), opts.Workers, evalOne)
		return mergeAnchors(results)
	}

	// Probe phase: score a spread-out subset to establish the incumbent.
	probes := probeOrder(topo, candidates)
	par.For(len(probes), opts.Workers, func(k int) { evalOne(probes[k]) })
	incumbent := math.Inf(1)
	probed := make([]bool, len(candidates))
	for _, i := range probes {
		probed[i] = true
		if r := &results[i]; r.done && r.d < incumbent {
			incumbent = r.d
		}
	}

	// Bound phase: an O(n) bound per remaining anchor, in parallel.
	rest := make([]int, 0, len(candidates)-len(probes))
	for i := range candidates {
		if !probed[i] {
			rest = append(rest, i)
		}
	}
	lbs := make([]float64, len(candidates))
	par.For(len(rest), opts.Workers, func(k int) {
		i := rest[k]
		lb, err := bound(candidates[i], incumbent)
		if err != nil {
			results[i].buildErr = err
			lb = math.Inf(1)
		}
		lbs[i] = lb
	})

	// Score phase: only the anchors the bound could not rule out. If every
	// probe was infeasible the incumbent is +Inf and nothing is pruned,
	// which degrades to the exhaustive scan.
	survivors := make([]int, 0, len(rest))
	for _, i := range rest {
		if results[i].buildErr == nil && lbs[i] <= incumbent {
			survivors = append(survivors, i)
		}
	}
	par.For(len(survivors), opts.Workers, func(k int) { evalOne(survivors[k]) })
	return mergeAnchors(results)
}

// mergeAnchors folds per-anchor results in candidate order with a strict
// improvement test, so ties keep the earliest candidate regardless of how
// the parallel phases were scheduled.
func mergeAnchors(results []anchorResult) (core.Placement, error) {
	bestDelay := math.Inf(1)
	var best core.Placement
	found := false
	var lastErr error
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return core.Placement{}, r.err
		}
		if r.buildErr != nil {
			lastErr = r.buildErr
			continue
		}
		if !r.done {
			continue // pruned: its score provably exceeds the minimum
		}
		if r.d < bestDelay {
			bestDelay = r.d
			best = r.f
			found = true
		}
	}
	if !found {
		if lastErr != nil {
			return core.Placement{}, fmt.Errorf("placement: no feasible anchor: %w", lastErr)
		}
		return core.Placement{}, fmt.Errorf("placement: no candidate anchors")
	}
	return best, nil
}

// probeOrder returns the indices (into candidates) to score before pruning
// starts: the candidate nearest the topology median first — per the paper,
// the optimum clusters around the median, so this probe usually sets a
// near-final incumbent — then greedy farthest-point traversal so the rest
// of the probes cover the metric. ~√n probes keep the phase cheap while
// giving the k-center guarantee that every anchor is within the covering
// radius of some probe.
func probeOrder(topo *topology.Topology, candidates []int) []int {
	n := len(candidates)
	k := int(math.Sqrt(float64(n)))
	if k < minProbes {
		k = minProbes
	}
	if k > n {
		k = n
	}
	med, _ := topo.Median()
	medRow := topo.RTTRow(med)
	pick := 0
	for i, c := range candidates {
		if medRow[c] < medRow[candidates[pick]] {
			pick = i
		}
	}
	probes := make([]int, 0, k)
	chosen := make([]bool, n)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(probes) < k {
		probes = append(probes, pick)
		chosen[pick] = true
		row := topo.RTTRow(candidates[pick])
		next, nextD := -1, math.Inf(-1)
		for i, c := range candidates {
			if d := row[c]; d < minDist[i] {
				minDist[i] = d
			}
			if !chosen[i] && minDist[i] > nextD {
				next, nextD = i, minDist[i]
			}
		}
		if next < 0 {
			break // k > distinct candidates; duplicates need no probing
		}
		pick = next
	}
	return probes
}

// ballBound builds the admissible score lower bound for the ball-based
// one-to-one constructions. perm maps element u to the ball rank of its
// host node (nil means identity, as in the Majority construction); it must
// match what the construction's build function assigns.
//
// Tier 1 (any strategy, O(sites)): every element of anchor v0's placement
// lies in the capacity ball of radius r(v0) around v0, so by the triangle
// inequality any quorum access from client v costs at least
// d(v,v0) − r(v0), and the average network delay is at least
// avg_v max(0, d(v,v0) − r(v0)).
//
// Tier 2 (balanced scoring only): with the uniform strategy the score is
// avg_v ExpectedMaxUniform(cost_v), and ExpectedMaxUniform — an
// expectation of maxima over a fixed quorum distribution — is
// coordinate-wise monotone. Element u sits on the ball node with shell
// distance s[perm[u]], so both triangle bounds give
// cost_v[u] ≥ |d(v,v0) − s[perm[u]]|, and feeding that pointwise floor
// through ExpectedMaxUniform lower-bounds the true score. This is the
// bound that bites on small-world metrics (AS graphs), where tier 1's
// worst-case-quorum floor is far below the uniform strategy's
// expected max. Tier 2 runs only when tier 1 failed to prune.
//
// The floor vector depends on the client only through t = d(v,v0), so
// tier 2 is really a scalar function φ(t) — and φ is 1-Lipschitz (each
// coordinate of the floor is 1-Lipschitz in t, and an expectation of
// maxima preserves that). Instead of paying an ExpectedMaxUniform per
// client, φ is evaluated on a boundGridSteps-point grid over the client
// distance range and extended downward by Lipschitz continuity
// (φ(t) ≥ φ(x) − |t−x|), keeping the per-anchor cost at
// O(grid·universe·log universe + sites) while giving up at most half a
// grid step of bound tightness.
func ballBound(topo *topology.Topology, sys quorum.System, perm []int, opts Options) func(int, float64) (float64, error) {
	nUniv := sys.UniverseSize()
	minCap := sys.UniformElementLoad()
	clients := opts.Clients
	_, balanced := opts.scoreBy().(core.BalancedStrategy)
	return func(v0 int, incumbent float64) (float64, error) {
		shell, err := ballShell(topo, v0, nUniv, minCap)
		if err != nil {
			return 0, err
		}
		r := shell[len(shell)-1]
		row := topo.RTTRow(v0)

		nc := len(clients)
		if clients == nil {
			nc = len(row)
		}
		forClients := func(fn func(t float64)) {
			if clients == nil {
				for _, t := range row {
					fn(t)
				}
				return
			}
			for _, v := range clients {
				fn(row[v])
			}
		}

		sum := 0.0
		forClients(func(t float64) {
			if t > r {
				sum += t - r
			}
		})
		lb := sum / float64(nc)
		if !balanced || lb > incumbent {
			return lb, nil
		}

		maxT := 0.0
		forClients(func(t float64) {
			if t > maxT {
				maxT = t
			}
		})
		if maxT <= 0 {
			return lb, nil
		}
		h := maxT / boundGridSteps
		floor := make([]float64, nUniv)
		phi := make([]float64, boundGridSteps+1)
		for g := range phi {
			t := float64(g) * h
			for u := range floor {
				s := shell[u]
				if perm != nil {
					s = shell[perm[u]]
				}
				if t >= s {
					floor[u] = t - s
				} else {
					floor[u] = s - t
				}
			}
			phi[g] = sys.ExpectedMaxUniform(floor)
		}
		sum = 0
		forClients(func(t float64) {
			g := int(t / h)
			if g >= boundGridSteps {
				g = boundGridSteps - 1
			}
			lo := phi[g] - (t - float64(g)*h)
			if hi := phi[g+1] - (float64(g+1)*h - t); hi > lo {
				lo = hi
			}
			if lo > 0 {
				sum += lo
			}
		})
		if lb2 := sum / float64(nc); lb2 > lb {
			lb = lb2
		}
		return lb, nil
	}
}

// ballShell returns the distances from v0 to the members of
// capacityBall(topo, v0, n, minCap) in increasing order, in O(sites·log n)
// and without materializing the sorted ball: a size-n max-heap keeps the n
// smallest eligible distances.
func ballShell(topo *topology.Topology, v0, n int, minCap float64) ([]float64, error) {
	if n <= 0 {
		return nil, nil
	}
	row := topo.RTTRow(v0)
	h := make([]float64, 0, n)
	for w, d := range row {
		if topo.Capacity(w) < minCap-1e-12 {
			continue
		}
		if len(h) < n {
			h = append(h, d)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if h[p] >= h[i] {
					break
				}
				h[p], h[i] = h[i], h[p]
				i = p
			}
		} else if d < h[0] {
			h[0] = d
			i := 0
			for {
				m := i
				if l := 2*i + 1; l < n && h[l] > h[m] {
					m = l
				}
				if r := 2*i + 2; r < n && h[r] > h[m] {
					m = r
				}
				if m == i {
					break
				}
				h[i], h[m] = h[m], h[i]
				i = m
			}
		}
	}
	if len(h) < n {
		return nil, fmt.Errorf("placement: only %d of %d nodes have capacity ≥ %v", len(h), n, minCap)
	}
	sort.Float64s(h)
	return h, nil
}
