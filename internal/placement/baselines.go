package placement

import (
	"fmt"
	"math/rand"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Baseline placements. The paper's constructions are worth their
// complexity only if they beat what an operator would do without them;
// these two naive strategies calibrate that gap (see the abl-baselines
// study).

// Random places the universe uniformly at random on distinct nodes (a
// one-to-one placement with no delay awareness), using the given seed.
func Random(topo *topology.Topology, sys quorum.System, seed int64) (core.Placement, error) {
	n := sys.UniverseSize()
	if n > topo.Size() {
		return core.Placement{}, fmt.Errorf("placement: universe %d exceeds %d nodes", n, topo.Size())
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(topo.Size())
	return core.NewPlacement(perm[:n], topo)
}

// GreedyMedian places elements one-to-one on the n nodes with the
// smallest average distance to all clients — the "put everything in the
// best data centers" heuristic. Unlike the ball construction it ignores
// how close the chosen nodes are to each other, which is exactly what
// quorum access latency punishes.
func GreedyMedian(topo *topology.Topology, sys quorum.System, opts Options) (core.Placement, error) {
	n := sys.UniverseSize()
	if n > topo.Size() {
		return core.Placement{}, fmt.Errorf("placement: universe %d exceeds %d nodes", n, topo.Size())
	}
	clients := opts.Clients
	if clients == nil {
		clients = make([]int, topo.Size())
		for i := range clients {
			clients[i] = i
		}
	}
	type scored struct {
		node int
		avg  float64
	}
	nodes := make([]scored, topo.Size())
	for w := 0; w < topo.Size(); w++ {
		sum := 0.0
		for _, v := range clients {
			sum += topo.RTT(v, w)
		}
		nodes[w] = scored{node: w, avg: sum / float64(len(clients))}
	}
	// Selection sort of the n best keeps this dependency-free and
	// deterministic on ties (lower node id wins).
	target := make([]int, 0, n)
	used := make([]bool, topo.Size())
	for len(target) < n {
		best := -1
		for w := range nodes {
			if used[w] {
				continue
			}
			if best == -1 || nodes[w].avg < nodes[best].avg ||
				(nodes[w].avg == nodes[best].avg && w < best) {
				best = w
			}
		}
		used[best] = true
		target = append(target, best)
	}
	return core.NewPlacement(target, topo)
}
