package placement

import (
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func BenchmarkGridOneToOnePlanetLab(b *testing.B) {
	topo := topology.PlanetLab50(1)
	sys, err := quorum.NewGrid(7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GridOneToOne(topo, sys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityOneToOneDaxlist(b *testing.B) {
	topo := topology.Daxlist161(1)
	sys, err := quorum.NewThreshold(25, 49)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MajorityOneToOne(topo, sys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManyToOnePlanetLab(b *testing.B) {
	topo := topology.PlanetLab50(1)
	sys, err := quorum.NewGrid(5)
	if err != nil {
		b.Fatal(err)
	}
	// A handful of anchors keeps a single iteration meaningful while the
	// full search is exercised by BenchmarkFig89 at the repository root.
	cfg := ManyToOneConfig{Candidates: []int{0, 10, 20, 30, 40}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ManyToOne(topo, sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalResponseTime(b *testing.B) {
	topo := topology.Daxlist161(1)
	sys, err := quorum.NewGrid(12)
	if err != nil {
		b.Fatal(err)
	}
	f, err := GridOneToOne(topo, sys, Options{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, core.AlphaForDemand(16000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := e.AvgResponseTime(core.BalancedStrategy{}); v <= 0 {
			b.Fatal("non-positive response")
		}
	}
}
