package placement

import (
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func BenchmarkGridOneToOnePlanetLab(b *testing.B) {
	topo := topology.PlanetLab50(1)
	sys, err := quorum.NewGrid(7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GridOneToOne(topo, sys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityOneToOneDaxlist(b *testing.B) {
	topo := topology.Daxlist161(1)
	sys, err := quorum.NewThreshold(25, 49)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MajorityOneToOne(topo, sys, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManyToOnePlanetLab(b *testing.B) {
	topo := topology.PlanetLab50(1)
	sys, err := quorum.NewGrid(5)
	if err != nil {
		b.Fatal(err)
	}
	// A handful of anchors keeps a single iteration meaningful while the
	// full search is exercised by BenchmarkFig89 at the repository root.
	cfg := ManyToOneConfig{Candidates: []int{0, 10, 20, 30, 40}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ManyToOne(topo, sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalResponseTime(b *testing.B) {
	topo := topology.Daxlist161(1)
	sys, err := quorum.NewGrid(12)
	if err != nil {
		b.Fatal(err)
	}
	f, err := GridOneToOne(topo, sys, Options{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, core.AlphaForDemand(16000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := e.AvgResponseTime(core.BalancedStrategy{}); v <= 0 {
			b.Fatal("non-positive response")
		}
	}
}

// benchASTopo memoizes the AS benchmark topology: generation involves a
// 600-source sparse closure and should not be timed per-benchmark.
var benchASTopo *topology.Topology

func getBenchASTopo(b *testing.B) *topology.Topology {
	b.Helper()
	if benchASTopo == nil {
		t, err := topology.Generate(topology.GenConfig{
			Name: "as-bench",
			AS:   &topology.ASGraphSpec{Sites: 600},
		}, topology.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		benchASTopo = t
	}
	return benchASTopo
}

// BenchmarkAnchorSearch compares the exhaustive anchor scan against the
// probe-and-prune search. Both return identical placements
// (TestPrunedMatchesExhaustive); the pruned run skips every anchor whose
// lower bound exceeds the probe incumbent. The geographic topology
// (daxlist) prunes mostly on the cheap ball-radius bound; the small-world
// AS topology needs the tier-2 expected-max bound.
func BenchmarkAnchorSearch(b *testing.B) {
	sys, err := quorum.NewThreshold(8, 15)
	if err != nil {
		b.Fatal(err)
	}
	for _, tb := range []struct {
		name string
		topo *topology.Topology
	}{
		{"as-600", getBenchASTopo(b)},
		{"dax-161", topology.Daxlist161(topology.DefaultSeed)},
	} {
		for _, bc := range []struct {
			name string
			mode SearchMode
		}{
			{"exhaustive", SearchExhaustive},
			{"pruned", SearchPruned},
		} {
			b.Run(tb.name+"/"+bc.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := MajorityOneToOne(tb.topo, sys, Options{Search: bc.mode}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
