package placement

import (
	"math/rand"
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// prunedTopos returns the seed-table topologies the equivalence property is
// checked on: both paper stand-ins plus a sparse-closure AS graph, since
// pruning effectiveness (and any tie structure) differs between the
// geographic metrics and the power-law shortest-path metric.
func prunedTopos(t *testing.T) []*topology.Topology {
	t.Helper()
	as, err := topology.Generate(topology.GenConfig{
		Name: "as-pruned-test",
		AS:   &topology.ASGraphSpec{Sites: 150, Workers: 1},
	}, topology.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Topology{
		topology.PlanetLab50(topology.DefaultSeed),
		topology.Daxlist161(topology.DefaultSeed),
		as,
	}
}

func placementsEqual(a, b core.Placement) bool {
	if a.UniverseSize() != b.UniverseSize() {
		return false
	}
	for u := 0; u < a.UniverseSize(); u++ {
		if a.Node(u) != b.Node(u) {
			return false
		}
	}
	return true
}

// TestPrunedMatchesExhaustive is the tentpole equivalence property: for
// every topology, system shape, capacity profile, and candidate/client
// restriction tried, the pruned search must return exactly the placement
// the exhaustive scan returns — same anchor, same node map — because
// pruning only ever skips anchors whose lower bound strictly exceeds a
// scored candidate.
func TestPrunedMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, topo := range prunedTopos(t) {
		n := topo.Size()

		// A capacity dip over a random third of the sites exercises the
		// eligibility filter inside the ball radius (and, on the smaller
		// topologies, infeasible anchors near the dip).
		constrained := topo.Clone()
		for i := 0; i < n/3; i++ {
			if err := constrained.SetCapacity(rng.Intn(n), 0.01); err != nil {
				t.Fatal(err)
			}
		}

		someClients := make([]int, 0, n/4)
		for i := 0; i < n; i += 4 {
			someClients = append(someClients, i)
		}
		someCandidates := make([]int, 0, n/2)
		for i := n - 1; i >= 0; i -= 2 { // reversed: order must not matter
			someCandidates = append(someCandidates, i)
		}

		cases := []struct {
			name string
			topo *topology.Topology
			opts Options
		}{
			{"all", topo, Options{Workers: 1}},
			{"capacity-dip", constrained, Options{Workers: 1}},
			{"clients-subset", topo, Options{Clients: someClients, Workers: 1}},
			{"candidates-subset", topo, Options{Candidates: someCandidates, Workers: 1}},
			{"parallel", topo, Options{Workers: 4}},
		}
		for _, tc := range cases {
			ex, pr := tc.opts, tc.opts
			ex.Search = SearchExhaustive
			pr.Search = SearchPruned

			maj := mustThreshold(t, 8, 15)
			fEx, errEx := MajorityOneToOne(tc.topo, maj, ex)
			fPr, errPr := MajorityOneToOne(tc.topo, maj, pr)
			if (errEx == nil) != (errPr == nil) {
				t.Fatalf("%s/%s majority: exhaustive err=%v, pruned err=%v", tc.topo.Name(), tc.name, errEx, errPr)
			}
			if errEx == nil && !placementsEqual(fEx, fPr) {
				t.Errorf("%s/%s majority: pruned placement differs from exhaustive", tc.topo.Name(), tc.name)
			}

			grid := mustGrid(t, 4)
			gEx, errEx := GridOneToOne(tc.topo, grid, ex)
			gPr, errPr := GridOneToOne(tc.topo, grid, pr)
			if (errEx == nil) != (errPr == nil) {
				t.Fatalf("%s/%s grid: exhaustive err=%v, pruned err=%v", tc.topo.Name(), tc.name, errEx, errPr)
			}
			if errEx == nil && !placementsEqual(gEx, gPr) {
				t.Errorf("%s/%s grid: pruned placement differs from exhaustive", tc.topo.Name(), tc.name)
			}
		}
	}
}

// TestPrunedMatchesExhaustiveRandomCaps fuzzes heterogeneous capacities:
// random per-site capacities change both the ball radii (the bound) and
// the feasible anchor set, and the equivalence must survive all of it.
func TestPrunedMatchesExhaustiveRandomCaps(t *testing.T) {
	topo := topology.Daxlist161(topology.DefaultSeed)
	sys := mustThreshold(t, 5, 9)
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		tp := topo.Clone()
		for i := 0; i < tp.Size(); i++ {
			if err := tp.SetCapacity(i, 0.02+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		fEx, errEx := MajorityOneToOne(tp, sys, Options{Search: SearchExhaustive, Workers: 1})
		fPr, errPr := MajorityOneToOne(tp, sys, Options{Search: SearchPruned, Workers: 1})
		if (errEx == nil) != (errPr == nil) {
			t.Fatalf("trial %d: exhaustive err=%v, pruned err=%v", trial, errEx, errPr)
		}
		if errEx == nil && !placementsEqual(fEx, fPr) {
			t.Errorf("trial %d: pruned placement differs from exhaustive", trial)
		}
	}
}

// TestPrunedInfeasible: when no anchor has enough capacity, both searches
// must report the no-feasible-anchor error.
func TestPrunedInfeasible(t *testing.T) {
	topo := topology.PlanetLab50(topology.DefaultSeed)
	tp := topo.Clone()
	if err := tp.SetUniformCapacity(0.001); err != nil {
		t.Fatal(err)
	}
	sys := mustThreshold(t, 8, 15) // uniform element load 1/15 >> 0.001
	for _, mode := range []SearchMode{SearchExhaustive, SearchPruned} {
		if _, err := MajorityOneToOne(tp, sys, Options{Search: mode, Workers: 1}); err == nil {
			t.Errorf("mode %d: expected no-feasible-anchor error", mode)
		}
	}
}

// TestBallShellMatchesCapacityBall pins the shell shortcut to the ball
// construction it must agree with: the heap-selected distances equal the
// distances to the materialized ball's members, in order.
func TestBallShellMatchesCapacityBall(t *testing.T) {
	topo := topology.PlanetLab50(topology.DefaultSeed)
	tp := topo.Clone()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < tp.Size(); i++ {
		if err := tp.SetCapacity(i, 0.05+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	const minCap = 0.5
	for v0 := 0; v0 < tp.Size(); v0++ {
		for _, n := range []int{1, 5, 15} {
			ball, errBall := capacityBall(tp, v0, n, minCap)
			shell, errShell := ballShell(tp, v0, n, minCap)
			if (errBall == nil) != (errShell == nil) {
				t.Fatalf("v0=%d n=%d: ball err=%v, shell err=%v", v0, n, errBall, errShell)
			}
			if errBall != nil {
				continue
			}
			if len(shell) != len(ball) {
				t.Fatalf("v0=%d n=%d: shell has %d entries, ball %d", v0, n, len(shell), len(ball))
			}
			for j, w := range ball {
				if shell[j] != tp.RTT(v0, w) {
					t.Fatalf("v0=%d n=%d rank %d: shell %v, ball member at %v", v0, n, j, shell[j], tp.RTT(v0, w))
				}
			}
		}
	}
}

// TestProbeOrderCoversAndDedups: probes must be distinct indices, start at
// the candidate nearest the median, and never exceed the candidate count.
func TestProbeOrderCoversAndDedups(t *testing.T) {
	topo := topology.PlanetLab50(topology.DefaultSeed)
	cands := []int{9, 3, 3, 41, 17, 9, 5, 28, 0, 1, 2, 33} // duplicates on purpose
	probes := probeOrder(topo, cands)
	if len(probes) > len(cands) {
		t.Fatalf("%d probes for %d candidates", len(probes), len(cands))
	}
	seen := map[int]bool{}
	for _, p := range probes {
		if seen[p] {
			t.Fatalf("probe index %d repeated", p)
		}
		seen[p] = true
	}
	med, _ := topo.Median()
	first := probes[0]
	for i, c := range cands {
		if topo.RTT(med, c) < topo.RTT(med, cands[first]) {
			t.Fatalf("probe 0 is candidate %d (d=%v) but %d is nearer the median (d=%v)",
				cands[first], topo.RTT(med, cands[first]), c, topo.RTT(med, c))
		}
		_ = i
	}
}
