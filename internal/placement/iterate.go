package placement

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// IterateConfig parameterizes the iterative algorithm of §4.2.
type IterateConfig struct {
	// Alpha is the load-to-delay factor used for the halting criterion
	// (expected response time).
	Alpha float64
	// Eps is the Lin–Vitter parameter for the embedded many-to-one
	// placements (default 1).
	Eps float64
	// MaxIterations bounds the loop (default 8); the paper observes most
	// runs terminate after the first iteration.
	MaxIterations int
	// Candidates / Clients as in Options.
	Candidates []int
	Clients    []int
	// LP passes solver options through to both phases' LPs (the GAP
	// pipeline of the many-to-one placement and the access-strategy LP).
	// The zero value reproduces the original solver's pivot sequence;
	// lp.PricingPartial trades that bit-reproducibility for speed.
	LP lp.Options
	// Workers bounds the embedded anchor search's worker pool
	// (0 = GOMAXPROCS); pass 1 when running Iterate calls in parallel.
	Workers int
}

// PhaseRecord captures the measures after each phase of one iteration,
// feeding Figure 8.9.
type PhaseRecord struct {
	Iteration int
	// Phase1NetDelay is the average network delay of the new placement
	// under the previous (shared) strategy.
	Phase1NetDelay float64
	// Phase2NetDelay is the average network delay after re-optimizing the
	// access strategies.
	Phase2NetDelay float64
	// Response is the expected response time (4.2) closing the iteration.
	Response float64
}

// IterResult is the outcome of the iterative algorithm.
type IterResult struct {
	Placement core.Placement
	Strategy  *core.ExplicitStrategy
	Response  float64
	History   []PhaseRecord
}

// Iterate alternates the many-to-one placement (phase 1, with the average
// of the previous per-client strategies as the shared strategy) and the
// access-strategy LP (phase 2, with capacities set to the loads the new
// placement induces), halting when expected response time stops
// decreasing, exactly as described in §4.2. The system must be
// enumerable.
func Iterate(topo *topology.Topology, sys quorum.System, cfg IterateConfig) (*IterResult, error) {
	if !sys.Enumerable() {
		return nil, fmt.Errorf("placement: iterative algorithm needs an enumerable system, got %s", sys.Name())
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 8
	}
	m := sys.NumQuorums()

	// p0: the uniform distribution for every client.
	shared := make([]float64, m)
	for i := range shared {
		shared[i] = 1 / float64(m)
	}

	var result *IterResult
	for j := 1; j <= maxIter; j++ {
		// Phase 1: many-to-one placement under the shared strategy.
		elemLoads := elementLoadsOf(sys, shared)
		scoreBy := sharedStrategy(topo, cfg.Clients, shared)
		f, err := ManyToOne(topo, sys, ManyToOneConfig{
			ElementLoads: elemLoads,
			ScoreBy:      scoreBy,
			Eps:          cfg.Eps,
			Candidates:   cfg.Candidates,
			Clients:      cfg.Clients,
			LP:           cfg.LP,
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("placement: iteration %d phase 1: %w", j, err)
		}
		e, err := newEval(topo, sys, f, cfg)
		if err != nil {
			return nil, err
		}
		phase1Delay := e.AvgNetworkDelay(scoreBy)

		// Phase 2: re-optimize strategies with capacities pinned to the
		// loads the placement currently induces (a hair of slack absorbs
		// LP tolerance at the boundary).
		caps := e.NodeLoads(scoreBy)
		for w := range caps {
			caps[w] += 1e-9
		}
		// Each iteration produces a new placement, so the strategy-LP
		// skeleton cannot be reused across iterations; the Optimizer still
		// carries the configured solver options through.
		opt, err := strategy.NewOptimizer(e, strategy.Config{LP: cfg.LP})
		if err != nil {
			return nil, fmt.Errorf("placement: iteration %d phase 2: %w", j, err)
		}
		res, err := opt.Optimize(caps)
		if err != nil {
			return nil, fmt.Errorf("placement: iteration %d phase 2: %w", j, err)
		}
		resp := e.AvgResponseTime(res.Strategy)
		rec := PhaseRecord{
			Iteration:      j,
			Phase1NetDelay: phase1Delay,
			Phase2NetDelay: res.AvgNetDelay,
			Response:       resp,
		}

		if result != nil && resp >= result.Response {
			// No improvement: halt and return the previous iteration's
			// output, per the paper.
			result.History = append(result.History, rec)
			return result, nil
		}
		hist := []PhaseRecord{rec}
		if result != nil {
			hist = append(result.History, rec)
		}
		result = &IterResult{Placement: f, Strategy: res.Strategy, Response: resp, History: hist}

		// Next shared strategy: the average of the per-client strategies.
		shared = averageRows(res.Strategy.Probs)
	}
	return result, nil
}

func newEval(topo *topology.Topology, sys quorum.System, f core.Placement, cfg IterateConfig) (*core.Eval, error) {
	e, err := core.NewEval(topo, sys, f, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	if cfg.Clients != nil {
		if err := e.SetClients(cfg.Clients); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// elementLoadsOf computes load_p(u) = Σ_{Q_i ∋ u} p(i) for a shared
// strategy.
func elementLoadsOf(sys quorum.System, shared []float64) []float64 {
	loads := make([]float64, sys.UniverseSize())
	for i, p := range shared {
		if p <= 0 {
			continue
		}
		for _, u := range sys.Quorum(i) {
			loads[u] += p
		}
	}
	return loads
}

// sharedStrategy wraps a single distribution as an ExplicitStrategy whose
// rows (one per client) are identical.
func sharedStrategy(topo *topology.Topology, clients []int, shared []float64) *core.ExplicitStrategy {
	n := topo.Size()
	if clients != nil {
		n = len(clients)
	}
	rows := make([][]float64, n)
	for k := range rows {
		rows[k] = append([]float64(nil), shared...)
	}
	return &core.ExplicitStrategy{Probs: rows, Label: "shared"}
}

func averageRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		for i, p := range r {
			out[i] += p
		}
	}
	inv := 1 / float64(len(rows))
	for i := range out {
		out[i] *= inv
	}
	return out
}
