// Package placement implements the paper's quorum-placement algorithms
// (§4.1): the optimal single-client one-to-one constructions for Majority
// (distance balls) and Grid (the shell construction), lifted to
// all-clients placements by anchoring at every candidate node; the
// singleton (graph median) placement; the many-to-one almost-capacity-
// respecting placement built on the GAP pipeline; and the iterative
// placement/strategy algorithm of §4.2.
package placement

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/gap"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Options tunes the placement search.
type Options struct {
	// ScoreBy is the access strategy used to score candidate placements
	// by average network delay over all clients. The paper anchors on the
	// uniform strategy (§4.1); nil defaults to core.BalancedStrategy.
	ScoreBy core.Strategy
	// Candidates restricts the anchor nodes v0 tried; nil tries every
	// node.
	Candidates []int
	// Clients restricts the client set used for scoring; nil uses all
	// nodes (the paper's model).
	Clients []int
	// Workers bounds the anchor-search worker pool (0 = GOMAXPROCS).
	// Callers that already run placements in parallel should pass 1 to
	// avoid multiplying pools.
	Workers int
	// Search selects the anchor-search algorithm for the ball-based
	// one-to-one constructions. SearchAuto (the default) switches to the
	// probe-and-prune search on large candidate sets; SearchExhaustive
	// scores every anchor; SearchPruned forces pruning. All modes return
	// the identical placement — pruning only skips anchors whose score
	// lower bound strictly exceeds an already-scored candidate.
	Search SearchMode
}

func (o Options) scoreBy() core.Strategy {
	if o.ScoreBy == nil {
		return core.BalancedStrategy{}
	}
	return o.ScoreBy
}

func (o Options) candidates(topo *topology.Topology) []int {
	if o.Candidates != nil {
		return o.Candidates
	}
	all := make([]int, topo.Size())
	for i := range all {
		all[i] = i
	}
	return all
}

// Singleton places all elements of an n-element universe on the median of
// the graph — the 2-approximation baseline (Lin).
func Singleton(topo *topology.Topology, n int) (core.Placement, error) {
	node, _ := topo.Median()
	return core.SingletonPlacement(n, node, topo)
}

// score evaluates the average network delay of placement f under the
// scoring strategy.
func score(topo *topology.Topology, sys quorum.System, f core.Placement, opts Options) (float64, error) {
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		return 0, err
	}
	if opts.Clients != nil {
		if err := e.SetClients(opts.Clients); err != nil {
			return 0, err
		}
	}
	return e.AvgNetworkDelay(opts.scoreBy()), nil
}

// MajorityOneToOne places a threshold system one-to-one: for each anchor
// v0, the universe maps onto the ball B(v0, n) of the n nodes closest to
// v0 whose capacity covers the uniform per-element load (Gupta et al.
// showed any one-to-one map onto a fixed ball has the same single-client
// delay); the anchor with the lowest all-clients average delay wins.
func MajorityOneToOne(topo *topology.Topology, sys quorum.Threshold, opts Options) (core.Placement, error) {
	// Elements map onto the ball in increasing-distance order, so the
	// bound's element→ball-rank permutation is the identity.
	bound := ballBound(topo, sys, nil, opts)
	return searchAnchorsBounded(topo, sys, opts, bound, func(v0 int) (core.Placement, error) {
		nodes, err := capacityBall(topo, v0, sys.UniverseSize(), sys.UniformElementLoad())
		if err != nil {
			return core.Placement{}, err
		}
		return core.NewPlacement(nodes, topo)
	})
}

// GridOneToOne places a k×k grid one-to-one using the paper's shell
// construction: sort the ball's nodes by decreasing distance from v0 and
// fill the grid in L-shaped shells from the top-left, so the bottom-right
// row+column quorum consists of the 2k−1 closest nodes.
func GridOneToOne(topo *topology.Topology, sys quorum.Grid, opts Options) (core.Placement, error) {
	k := sys.Dim()
	n := sys.UniverseSize()
	// The same element→ball-rank permutation drives both the build and the
	// score lower bound, so they cannot drift apart.
	perm := gridShellRanks(k)
	bound := ballBound(topo, sys, perm, opts)
	return searchAnchorsBounded(topo, sys, opts, bound, func(v0 int) (core.Placement, error) {
		nodes, err := capacityBall(topo, v0, n, sys.UniformElementLoad())
		if err != nil {
			return core.Placement{}, err
		}
		target := make([]int, n)
		for u, p := range perm {
			target[u] = nodes[p]
		}
		return core.NewPlacement(target, topo)
	})
}

// gridShellRanks returns the shell construction's element→ball-rank map:
// element u of the k×k grid is hosted on the gridShellRanks(k)[u]-th
// closest ball node. The ball is filled in L-shaped shells from the
// top-left in decreasing-distance order, so the bottom-right row+column
// quorum consists of the 2k−1 closest nodes.
func gridShellRanks(k int) []int {
	n := k * k
	perm := make([]int, n)
	rank := 0
	assign := func(row, col int) {
		perm[row*k+col] = n - 1 - rank
		rank++
	}
	assign(0, 0)
	for s := 1; s < k; s++ {
		for row := 0; row < s; row++ {
			assign(row, s)
		}
		for col := 0; col <= s; col++ {
			assign(s, col)
		}
	}
	return perm
}

// OneToOne dispatches to the construction matching the system's type.
func OneToOne(topo *topology.Topology, sys quorum.System, opts Options) (core.Placement, error) {
	switch s := sys.(type) {
	case quorum.Threshold:
		return MajorityOneToOne(topo, s, opts)
	case quorum.Grid:
		return GridOneToOne(topo, s, opts)
	case quorum.Singleton:
		return Singleton(topo, 1)
	default:
		return core.Placement{}, fmt.Errorf("placement: no one-to-one construction for %s", sys.Name())
	}
}

// searchAnchors builds and scores one candidate placement per anchor and
// keeps the best. Anchors are independent, so they are evaluated on a
// GOMAXPROCS-bounded worker pool; the results are merged in candidate
// order afterwards, which makes the outcome identical to the serial scan
// (ties keep the earliest candidate) regardless of scheduling. Searches
// with a score lower bound use searchAnchorsBounded directly, which can
// prune anchors; this wrapper is the unconditionally exhaustive form.
func searchAnchors(topo *topology.Topology, sys quorum.System, opts Options,
	build func(v0 int) (core.Placement, error)) (core.Placement, error) {
	return searchAnchorsBounded(topo, sys, opts, nil, build)
}

// capacityBall returns the n nodes closest to v0 (ordered by increasing
// distance) whose capacity is at least minCap, per the paper's
// requirement cap(v) ≥ load_f(u).
func capacityBall(topo *topology.Topology, v0, n int, minCap float64) ([]int, error) {
	ball := topo.Ball(v0, topo.Size())
	out := make([]int, 0, n)
	for _, w := range ball {
		if topo.Capacity(w) >= minCap-1e-12 {
			out = append(out, w)
			if len(out) == n {
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("placement: only %d of %d nodes have capacity ≥ %v", len(out), n, minCap)
}

// ManyToOneConfig parameterizes the §4.1.2 almost-capacity-respecting
// placement.
type ManyToOneConfig struct {
	// ElementLoads gives load_p(u) for the shared access strategy p. Nil
	// defaults to the uniform strategy's loads.
	ElementLoads []float64
	// ScoreBy scores candidate placements (defaults to the balanced
	// strategy, matching ElementLoads' default).
	ScoreBy core.Strategy
	// Eps is the Lin–Vitter filtering parameter (default 1).
	Eps float64
	// Candidates and Clients as in Options.
	Candidates []int
	Clients    []int
	// LP passes solver options through to the GAP pipeline's LPs. The
	// zero value reproduces the original solver's pivot sequence;
	// lp.PricingPartial trades that bit-reproducibility for speed.
	LP lp.Options
	// Workers bounds the anchor-search worker pool, as in Options.
	Workers int
}

// ManyToOne computes the almost-capacity-respecting many-to-one placement:
// for each anchor v0 it solves the GAP LP relaxation with costs
// load_p(u)·d(v0, w), filters (Lin–Vitter), rounds (Shmoys–Tardos), and
// returns the anchor whose placement minimizes the all-clients average
// network delay. Node capacities come from the topology and may be
// exceeded by the bounded rounding violation.
func ManyToOne(topo *topology.Topology, sys quorum.System, cfg ManyToOneConfig) (core.Placement, error) {
	n := sys.UniverseSize()
	loads := cfg.ElementLoads
	if loads == nil {
		loads = make([]float64, n)
		for u := range loads {
			loads[u] = sys.UniformElementLoad()
		}
	}
	if len(loads) != n {
		return core.Placement{}, fmt.Errorf("placement: %d element loads for universe %d", len(loads), n)
	}
	eps := cfg.Eps
	if eps == 0 {
		eps = 1
	}
	opts := Options{ScoreBy: cfg.ScoreBy, Candidates: cfg.Candidates, Clients: cfg.Clients, Workers: cfg.Workers}

	caps := topo.Capacities()
	return searchAnchors(topo, sys, opts, func(v0 int) (core.Placement, error) {
		row := topo.RTTRow(v0)
		cost := make([][]float64, n)
		for u := 0; u < n; u++ {
			cost[u] = make([]float64, topo.Size())
			for w := range cost[u] {
				cost[u][w] = loads[u] * row[w]
			}
		}
		ins := &gap.Instance{Sizes: loads, Capacities: caps, Cost: cost}
		a, err := gap.SolveWith(ins, eps, cfg.LP)
		if err != nil {
			return core.Placement{}, fmt.Errorf("placement: anchor %d: %w", v0, err)
		}
		return core.NewPlacement(a.MachineOf, topo)
	})
}
