package placement

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func testTopo(t *testing.T, n int, seed int64) *topology.Topology {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1+rng.Float64()*99)
		}
	}
	m.MetricClosure()
	tp, err := topology.New("test", make([]topology.Site, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func mustGrid(t *testing.T, k int) quorum.Grid {
	t.Helper()
	s, err := quorum.NewGrid(k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustThreshold(t *testing.T, q, n int) quorum.Threshold {
	t.Helper()
	s, err := quorum.NewThreshold(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingletonAtMedian(t *testing.T) {
	topo := testTopo(t, 12, 1)
	f, err := Singleton(topo, 5)
	if err != nil {
		t.Fatal(err)
	}
	median, _ := topo.Median()
	for u := 0; u < 5; u++ {
		if f.Node(u) != median {
			t.Errorf("element %d on node %d, want median %d", u, f.Node(u), median)
		}
	}
}

func TestMajorityOneToOneIsOneToOne(t *testing.T) {
	topo := testTopo(t, 15, 2)
	sys := mustThreshold(t, 4, 7)
	f, err := MajorityOneToOne(topo, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsOneToOne() {
		t.Error("majority placement is not one-to-one")
	}
	if f.UniverseSize() != 7 {
		t.Errorf("universe = %d, want 7", f.UniverseSize())
	}
}

// TestMajoritySingleClientOptimal: anchored and evaluated at one client,
// the closest-quorum delay must equal the q-th smallest distance from
// that client — the information-theoretic optimum for one-to-one
// placements.
func TestMajoritySingleClientOptimal(t *testing.T) {
	topo := testTopo(t, 15, 3)
	sys := mustThreshold(t, 4, 7)
	const v0 = 3
	f, err := MajorityOneToOne(topo, sys, Options{
		Candidates: []int{v0},
		Clients:    []int{v0},
		ScoreBy:    core.ClosestStrategy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetClients([]int{v0}); err != nil {
		t.Fatal(err)
	}
	got := e.AvgNetworkDelay(core.ClosestStrategy{})

	dists := topo.Distances().Row(v0)
	sort.Float64s(dists)
	want := dists[sys.QuorumSize()-1] // q-th smallest including self (0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("single-client majority delay = %v, want %v", got, want)
	}
}

// TestGridSingleClientOptimal: the shell construction's closest quorum
// for the anchor consists of the 2k−1 nearest nodes.
func TestGridSingleClientOptimal(t *testing.T) {
	topo := testTopo(t, 30, 4)
	sys := mustGrid(t, 4)
	const v0 = 7
	f, err := GridOneToOne(topo, sys, Options{
		Candidates: []int{v0},
		Clients:    []int{v0},
		ScoreBy:    core.ClosestStrategy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetClients([]int{v0}); err != nil {
		t.Fatal(err)
	}
	got := e.AvgNetworkDelay(core.ClosestStrategy{})

	dists := topo.Distances().Row(v0)
	sort.Float64s(dists)
	want := dists[sys.QuorumSize()-1]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("single-client grid delay = %v, want %v (2k-1-th smallest)", got, want)
	}
}

// TestGridShellBeatsReversed: the paper's shell order (big distances in
// the top-left) must beat the reversed order for the anchor client under
// the uniform strategy.
func TestGridShellBeatsReversed(t *testing.T) {
	topo := testTopo(t, 30, 5)
	sys := mustGrid(t, 4)
	const v0 = 0
	f, err := GridOneToOne(topo, sys, Options{Candidates: []int{v0}, Clients: []int{v0}})
	if err != nil {
		t.Fatal(err)
	}
	// Reversed: same ball, but big distances in the bottom-right.
	targets := f.Targets()
	rev := make([]int, len(targets))
	for i := range targets {
		rev[i] = targets[len(targets)-1-i]
	}
	fr, err := core.NewPlacement(rev, topo)
	if err != nil {
		t.Fatal(err)
	}
	delay := func(p core.Placement) float64 {
		e, err := core.NewEval(topo, sys, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetClients([]int{v0}); err != nil {
			t.Fatal(err)
		}
		return e.AvgNetworkDelay(core.BalancedStrategy{})
	}
	if ds, dr := delay(f), delay(fr); ds > dr+1e-9 {
		t.Errorf("shell placement delay %v worse than reversed %v", ds, dr)
	}
}

func TestOneToOneDispatch(t *testing.T) {
	topo := testTopo(t, 12, 6)
	for _, sys := range []quorum.System{mustThreshold(t, 3, 5), mustGrid(t, 3), quorum.Singleton{}} {
		f, err := OneToOne(topo, sys, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if f.UniverseSize() != sys.UniverseSize() {
			t.Errorf("%s: placed %d elements, want %d", sys.Name(), f.UniverseSize(), sys.UniverseSize())
		}
	}
}

func TestCapacityFilterExcludesSmallNodes(t *testing.T) {
	topo := testTopo(t, 10, 7)
	sys := mustThreshold(t, 3, 5) // uniform element load 0.6
	// Nodes 0..4 get capacity below the element load.
	for w := 0; w < 5; w++ {
		if err := topo.SetCapacity(w, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	f, err := MajorityOneToOne(topo, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range f.Support() {
		if w < 5 {
			t.Errorf("support includes low-capacity node %d", w)
		}
	}
}

func TestCapacityFilterInfeasible(t *testing.T) {
	topo := testTopo(t, 6, 8)
	sys := mustThreshold(t, 3, 5)
	for w := 0; w < 6; w++ {
		if err := topo.SetCapacity(w, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MajorityOneToOne(topo, sys, Options{}); err == nil {
		t.Error("placement succeeded with insufficient capacities")
	}
}

func TestManyToOneReducesDelay(t *testing.T) {
	topo := testTopo(t, 16, 9)
	sys := mustGrid(t, 3)
	oto, err := GridOneToOne(topo, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mto, err := ManyToOne(topo, sys, ManyToOneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	delay := func(f core.Placement) float64 {
		e, err := core.NewEval(topo, sys, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e.AvgNetworkDelay(core.BalancedStrategy{})
	}
	if dm, do := delay(mto), delay(oto); dm > do+1e-9 {
		t.Errorf("many-to-one delay %v worse than one-to-one %v", dm, do)
	}
}

func TestManyToOneRespectsCapacityBound(t *testing.T) {
	topo := testTopo(t, 12, 10)
	sys := mustGrid(t, 3)
	// Tight-ish capacities: uniform element load is 5/9; universe 9.
	if err := topo.SetUniformCapacity(0.9); err != nil {
		t.Fatal(err)
	}
	f, err := ManyToOne(topo, sys, ManyToOneConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	loads := e.NodeLoads(core.BalancedStrategy{})
	maxElem := sys.UniformElementLoad()
	for w, l := range loads {
		// Lin–Vitter (eps=1) inflation ≤ 2 plus one element of rounding
		// slack.
		if l > 2*topo.Capacity(w)+maxElem+1e-6 {
			t.Errorf("node %d load %v exceeds violation bound (cap %v)", w, l, topo.Capacity(w))
		}
	}
}

func TestIterateImprovesOrHalts(t *testing.T) {
	topo := testTopo(t, 12, 11)
	sys := mustGrid(t, 3)
	res, err := Iterate(topo, sys, IterateConfig{Alpha: 10, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("empty history")
	}
	// Phase 2 never hurts network delay relative to phase 1.
	for _, rec := range res.History {
		if rec.Phase2NetDelay > rec.Phase1NetDelay+1e-6 {
			t.Errorf("iteration %d: phase 2 delay %v > phase 1 %v",
				rec.Iteration, rec.Phase2NetDelay, rec.Phase1NetDelay)
		}
	}
	// Accepted responses are strictly decreasing except possibly the last
	// (rejected) record.
	for i := 1; i < len(res.History)-1; i++ {
		if res.History[i].Response >= res.History[i-1].Response {
			t.Errorf("iteration %d response %v did not improve on %v",
				res.History[i].Iteration, res.History[i].Response, res.History[i-1].Response)
		}
	}
	if res.Strategy == nil {
		t.Error("nil strategy in result")
	}
}

func TestIterateBeatsOneToOneOnNetworkDelay(t *testing.T) {
	// §7: "Since this approach creates many-to-one placements, network
	// delay will necessarily decrease" vs one-to-one.
	topo := testTopo(t, 12, 12)
	sys := mustGrid(t, 3)
	res, err := Iterate(topo, sys, IterateConfig{Alpha: 0, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	oto, err := GridOneToOne(topo, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, oto, 0)
	if err != nil {
		t.Fatal(err)
	}
	otoDelay := e.AvgNetworkDelay(core.BalancedStrategy{})
	final := res.History[len(res.History)-1]
	if final.Phase2NetDelay > otoDelay+1e-6 {
		t.Errorf("iterative delay %v worse than one-to-one %v", final.Phase2NetDelay, otoDelay)
	}
}

func TestIterateRejectsNonEnumerable(t *testing.T) {
	topo := testTopo(t, 60, 13)
	sys := mustThreshold(t, 26, 51)
	if _, err := Iterate(topo, sys, IterateConfig{}); err == nil {
		t.Error("Iterate accepted a non-enumerable system")
	}
}

func TestManyToOneElementLoadValidation(t *testing.T) {
	topo := testTopo(t, 8, 14)
	sys := mustGrid(t, 2)
	_, err := ManyToOne(topo, sys, ManyToOneConfig{ElementLoads: []float64{1, 2}})
	if err == nil {
		t.Error("wrong-length element loads accepted")
	}
}

func TestRandomPlacement(t *testing.T) {
	topo := testTopo(t, 12, 20)
	sys := mustGrid(t, 3)
	f, err := Random(topo, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsOneToOne() {
		t.Error("random placement not one-to-one")
	}
	g, err := Random(topo, sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 9; u++ {
		if f.Node(u) != g.Node(u) {
			t.Fatal("same seed produced different random placements")
		}
	}
	if _, err := Random(topo, mustGrid(t, 4), 1); err == nil {
		t.Error("oversized universe accepted")
	}
}

func TestGreedyMedianPicksBestNodes(t *testing.T) {
	topo := testTopo(t, 12, 21)
	sys := mustThreshold(t, 2, 3)
	f, err := GreedyMedian(topo, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsOneToOne() {
		t.Error("greedy placement not one-to-one")
	}
	// Every unused node must have average distance >= the worst used one.
	worstUsed := 0.0
	used := map[int]bool{}
	for _, w := range f.Support() {
		used[w] = true
		if d := topo.Distances().AvgDistanceTo(w); d > worstUsed {
			worstUsed = d
		}
	}
	for w := 0; w < topo.Size(); w++ {
		if !used[w] && topo.Distances().AvgDistanceTo(w) < worstUsed-1e-9 {
			t.Errorf("node %d (avg %v) unused but better than worst used (%v)",
				w, topo.Distances().AvgDistanceTo(w), worstUsed)
		}
	}
}

func TestPaperConstructionsBeatBaselines(t *testing.T) {
	// The ball/shell constructions must beat random placement on average
	// network delay under the closest strategy, and should beat
	// greedy-median for systems with large quorums (where co-location
	// matters).
	topo := testTopo(t, 20, 22)
	for _, sys := range []quorum.System{mustGrid(t, 4), mustThreshold(t, 9, 16)} {
		delay := func(f core.Placement) float64 {
			e, err := core.NewEval(topo, sys, f, 0)
			if err != nil {
				t.Fatal(err)
			}
			return e.AvgNetworkDelay(core.ClosestStrategy{})
		}
		paper, err := OneToOne(topo, sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := Random(topo, sys, 99)
		if err != nil {
			t.Fatal(err)
		}
		if dp, dr := delay(paper), delay(rnd); dp > dr+1e-9 {
			t.Errorf("%s: paper construction %v worse than random %v", sys.Name(), dp, dr)
		}
	}
}
