package probe

import (
	"sort"
	"sync"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// ReporterConfig tunes the demand reporter.
type ReporterConfig struct {
	// DemandPerRequest converts a window's total request count into the
	// per-client demand value (default 1): demand = total × this.
	DemandPerRequest float64
	// Noise is the relative hysteresis band (default 5%): demand and
	// per-site weights are re-emitted only when they move more than this
	// fraction from the last emitted values.
	Noise float64
	// WeightFloor is the weight reported for a site that received no
	// requests this window (default 0.01). Weights must stay positive —
	// a silent site is a cold site, not a nonexistent one.
	WeightFloor float64
}

func (c ReporterConfig) demandPerRequest() float64 {
	if c.DemandPerRequest <= 0 {
		return 1
	}
	return c.DemandPerRequest
}

func (c ReporterConfig) noise() float64 {
	if c.Noise <= 0 {
		return 0.05
	}
	return c.Noise
}

func (c ReporterConfig) weightFloor() float64 {
	if c.WeightFloor <= 0 {
		return 0.01
	}
	return c.WeightFloor
}

// Reporter aggregates per-site client request counts into windowed
// demand/weights deltas: total volume becomes a demand delta, the
// per-site distribution (normalized to mean 1 over the sites ever
// seen) becomes a weights delta. Both pass through relative-change
// hysteresis so steady traffic emits nothing. Safe for concurrent
// Observe calls; Flush is called by the posting loop once per window.
type Reporter struct {
	cfg ReporterConfig

	mu     sync.Mutex
	counts map[string]float64 // this window's requests per site
	roster map[string]bool    // every site ever observed

	emittedDemand  float64
	emittedWeights map[string]float64
	hasEmitted     bool
}

// NewReporter builds a reporter.
func NewReporter(cfg ReporterConfig) *Reporter {
	return &Reporter{
		cfg:    cfg,
		counts: make(map[string]float64),
		roster: make(map[string]bool),
	}
}

// Observe records n client requests attributed to site.
func (r *Reporter) Observe(site string, n int) {
	if n <= 0 || site == "" {
		return
	}
	r.mu.Lock()
	r.counts[site] += float64(n)
	r.roster[site] = true
	r.mu.Unlock()
}

// Flush closes the current window: it derives demand and weights from
// the window's counts, resets the counts, and returns the deltas that
// cleared hysteresis (often none). An empty window returns nothing —
// no observations is missing telemetry, not zero demand.
func (r *Reporter) Flush() []deploy.Delta {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) == 0 {
		return nil
	}

	total := 0.0
	for _, c := range r.counts {
		total += c
	}
	demand := total * r.cfg.demandPerRequest()

	// Normalize the distribution over every site ever seen to mean 1,
	// flooring silent sites: deploy treats weights as relative demand
	// shares, and mean 1 keeps demand × weights consistent with the
	// uniform baseline.
	names := make([]string, 0, len(r.roster))
	for site := range r.roster {
		names = append(names, site)
	}
	sort.Strings(names)
	mean := total / float64(len(names))
	weights := make(map[string]float64, len(names))
	for _, site := range names {
		w := r.counts[site] / mean
		if w < r.cfg.weightFloor() {
			w = r.cfg.weightFloor()
		}
		weights[site] = w
	}
	for site := range r.counts {
		delete(r.counts, site)
	}

	var out []deploy.Delta
	if r.changed(demand, weights) {
		out = append(out,
			deploy.Delta{Kind: deploy.KindDemand, Value: demand},
			deploy.Delta{Kind: deploy.KindWeights, Weights: weights},
		)
		r.emittedDemand = demand
		r.emittedWeights = weights
		r.hasEmitted = true
	}
	return out
}

// changed applies the hysteresis band to the window's demand and
// weights against the last emitted pair.
func (r *Reporter) changed(demand float64, weights map[string]float64) bool {
	if !r.hasEmitted {
		return true
	}
	noise := r.cfg.noise()
	if relChange(demand, r.emittedDemand) > noise {
		return true
	}
	if len(weights) != len(r.emittedWeights) {
		return true
	}
	for site, w := range weights {
		prev, ok := r.emittedWeights[site]
		if !ok || relChange(w, prev) > noise {
			return true
		}
	}
	return false
}

func relChange(v, prev float64) float64 {
	if prev == 0 {
		if v == 0 {
			return 0
		}
		return 1
	}
	d := (v - prev) / prev
	if d < 0 {
		return -d
	}
	return d
}
