// Package probe closes the telemetry loop: it is the measurement side
// of the deployment plane, producing the typed deltas that
// deploy.Manager consumes. Three pieces compose:
//
//   - Agent measures one row of the N×N RTT ping mesh against its peer
//     agents — over a real UDP echo Transport or an injectable FakeMesh
//     — and runs every sample through a Smoother: windowed median with
//     MAD outlier rejection, emitting an rtt delta only when the
//     smoothed value moves beyond a noise threshold. This probe-noise
//     hysteresis stacks under the deploy manager's move hysteresis:
//     noise that never clears the emission band never even reaches the
//     planner, so a noisy-but-stationary mesh costs zero re-plans.
//
//   - Reporter aggregates per-site client request counts into windowed
//     demand/weights deltas with the same relative-change hysteresis.
//
//   - Batcher coalesces emitted deltas locally (deploy.Coalesce
//     semantics — a window of probe chatter collapses to one delta per
//     site pair) and posts one batch per cadence tick with
//     retry/backoff, never mid-window. One published version per
//     window, not one per probe.
//
// Staleness is observable end to end: every accepted batch resets the
// serving tenant's delta_age_ms gauge, so a dead mesh shows up as
// unbounded input age rather than as a silently frozen plan.
package probe

import "context"

// Transport measures round-trip times from the local agent to named
// peers. Implementations must be safe for concurrent use.
type Transport interface {
	// Measure returns one RTT sample to the named peer in milliseconds.
	Measure(ctx context.Context, peer string) (float64, error)
}
