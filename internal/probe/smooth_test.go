package probe

import (
	"math"
	"testing"
)

func observeAll(s *Smoother, samples []float64) (emitted []float64) {
	for _, v := range samples {
		if e, ok := s.Observe(v); ok {
			emitted = append(emitted, e)
		}
	}
	return emitted
}

func TestSmootherWarmupEmitsMedian(t *testing.T) {
	s := NewSmoother(SmootherConfig{Window: 5})
	got := observeAll(s, []float64{50, 52, 48, 51, 49})
	if len(got) != 1 || got[0] != 50 {
		t.Fatalf("warmup emissions %v, want [50]", got)
	}
}

func TestSmootherHysteresisAbsorbsNoise(t *testing.T) {
	s := NewSmoother(SmootherConfig{Window: 5, Noise: 0.05, NoiseFloorMS: 0.5})
	if got := observeAll(s, []float64{50, 50.3, 49.7, 50.2, 49.8}); len(got) != 1 {
		t.Fatalf("warmup emissions %v", got)
	}
	// ±0.4ms wiggle on a 50ms link stays far inside the 5% band.
	if got := observeAll(s, []float64{50.4, 49.6, 50.1, 49.9, 50.2, 49.8, 50.3, 49.7}); len(got) != 0 {
		t.Fatalf("noise emitted %v, want nothing", got)
	}
	// A real drift beyond the band re-emits (after the MAD gate's
	// level-shift run and the window refill).
	drift := make([]float64, 12)
	for i := range drift {
		drift[i] = 56
	}
	if got := observeAll(s, drift); len(got) == 0 {
		t.Fatal("drift beyond the band never emitted")
	}
}

func TestSmootherRejectsSpikes(t *testing.T) {
	s := NewSmoother(SmootherConfig{Window: 5, MADGate: 4, Noise: 0.05})
	observeAll(s, []float64{50, 50.2, 49.8, 50.1, 49.9})
	// A 10× spike must neither emit nor drag the median.
	if got := observeAll(s, []float64{500, 50, 500, 49.9, 50.1}); len(got) != 0 {
		t.Fatalf("spikes emitted %v", got)
	}
}

func TestSmootherLevelShiftRecovers(t *testing.T) {
	s := NewSmoother(SmootherConfig{Window: 5, MADGate: 4, ShiftRuns: 3, Noise: 0.05})
	observeAll(s, []float64{50, 50.2, 49.8, 50.1, 49.9})
	// The path changed: every new sample is ~80ms. The first ShiftRuns
	// samples are rejected as outliers, then the window flushes and the
	// smoother converges on the new level.
	got := observeAll(s, []float64{80, 80.2, 79.8, 80.1, 79.9, 80, 80.2, 79.9})
	if len(got) == 0 {
		t.Fatal("level shift never emitted")
	}
	if last := got[len(got)-1]; math.Abs(last-80) > 1 {
		t.Fatalf("re-converged at %v, want ~80", last)
	}
}

func TestSmootherRawPassthrough(t *testing.T) {
	s := NewSmoother(SmootherConfig{Raw: true})
	in := []float64{50, 500, 49, 51}
	got := observeAll(s, in)
	if len(got) != len(in) {
		t.Fatalf("raw mode emitted %v, want every sample", got)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("raw mode altered sample %d: %v != %v", i, got[i], in[i])
		}
	}
}

func TestSmootherConstantWindowToleratesWiggle(t *testing.T) {
	// A perfectly constant window has MAD 0; the floor keeps ordinary
	// sub-noise wiggle from being rejected as outliers forever.
	s := NewSmoother(SmootherConfig{Window: 5, MADGate: 4, Noise: 0.05, NoiseFloorMS: 0.5})
	observeAll(s, []float64{50, 50, 50, 50, 50})
	for i := 0; i < 20; i++ {
		if _, ok := s.Observe(50.1); ok {
			t.Fatal("sub-band wiggle emitted")
		}
	}
	if s.outlierRun != 0 {
		t.Fatalf("wiggle counted as outliers: run %d", s.outlierRun)
	}
}
