package probe

import (
	"math"
	"sort"
)

// SmootherConfig tunes the per-pair sample filter. The zero value gets
// sane defaults: window 9, MAD gate 4, shift run 5, 5% noise band with
// a 0.5ms floor.
type SmootherConfig struct {
	// Window is the sliding-window length the median is taken over.
	Window int
	// MADGate rejects a sample whose deviation from the window median
	// exceeds MADGate × MAD (median absolute deviation) — the classic
	// robust outlier test; RTT spike artifacts (queueing, scheduler
	// stalls) die here. Negative disables the gate.
	MADGate float64
	// ShiftRuns is the number of consecutive rejected samples after
	// which the window is declared stale and flushed: a genuine level
	// shift (path change) looks like an endless run of outliers, and
	// flushing lets the smoother re-converge on the new level instead of
	// rejecting reality forever.
	ShiftRuns int
	// Noise is the relative emission band: a new median is emitted only
	// when it differs from the last emitted value by more than
	// Noise × lastEmitted (default 5%).
	Noise float64
	// NoiseFloorMS is the absolute floor of the emission band (default
	// 0.5ms), so sub-millisecond links don't emit on every wiggle.
	NoiseFloorMS float64
	// Raw disables smoothing and hysteresis entirely: every sample is
	// emitted as measured. It exists to A/B the filter's effect (and for
	// the regression test proving the filter suppresses re-plans).
	Raw bool
}

func (c SmootherConfig) window() int {
	if c.Window <= 0 {
		return 9
	}
	return c.Window
}

func (c SmootherConfig) madGate() float64 {
	if c.MADGate == 0 {
		return 4
	}
	return c.MADGate
}

func (c SmootherConfig) shiftRuns() int {
	if c.ShiftRuns <= 0 {
		return 5
	}
	return c.ShiftRuns
}

func (c SmootherConfig) noise() float64 {
	if c.Noise <= 0 {
		return 0.05
	}
	return c.Noise
}

func (c SmootherConfig) noiseFloor() float64 {
	if c.NoiseFloorMS <= 0 {
		return 0.5
	}
	return c.NoiseFloorMS
}

// Smoother filters one measurement stream (one site pair): windowed
// median, MAD outlier rejection with level-shift recovery, and an
// emission hysteresis band. Not safe for concurrent use; each Agent
// owns one per peer.
type Smoother struct {
	cfg        SmootherConfig
	window     []float64 // ring buffer of accepted samples
	next       int       // ring write position once the window is full
	scratch    []float64 // sort space for median/MAD
	outlierRun int
	emitted    float64
	hasEmitted bool
}

// NewSmoother builds a smoother with the given configuration.
func NewSmoother(cfg SmootherConfig) *Smoother {
	w := cfg.window()
	return &Smoother{cfg: cfg, window: make([]float64, 0, w), scratch: make([]float64, 0, w)}
}

// Observe feeds one sample. It returns (value, true) when the sample
// moves the smoothed estimate beyond the noise band — the value to
// emit as an rtt delta — and (0, false) when the sample is absorbed.
// The first emission happens once the window fills (the warmup
// baseline); in Raw mode every sample emits unfiltered.
func (s *Smoother) Observe(v float64) (float64, bool) {
	if s.cfg.Raw {
		return v, true
	}
	w := s.cfg.window()

	// MAD gate: once enough samples exist for a meaningful deviation
	// estimate, reject spikes instead of letting them drag the median.
	if len(s.window) >= 4 && s.cfg.madGate() > 0 {
		med, mad := s.stats()
		// Floor the MAD so a near-constant window (MAD → 0) doesn't
		// reject ordinary sub-noise wiggle as outliers.
		if floor := s.cfg.noiseFloor() / s.cfg.madGate(); mad < floor {
			mad = floor
		}
		if math.Abs(v-med) > s.cfg.madGate()*mad {
			s.outlierRun++
			if s.outlierRun >= s.cfg.shiftRuns() {
				// A run of consistent "outliers" is a level shift, not
				// noise: flush the stale window and re-converge from this
				// sample.
				s.window = s.window[:0]
				s.next = 0
				s.outlierRun = 0
				s.window = append(s.window, v)
			}
			return 0, false
		}
	}
	s.outlierRun = 0

	if len(s.window) < w {
		s.window = append(s.window, v)
		if len(s.window) < w {
			return 0, false
		}
	} else {
		s.window[s.next] = v
		s.next = (s.next + 1) % w
	}

	med, _ := s.stats()
	band := s.cfg.noise() * s.emitted
	if floor := s.cfg.noiseFloor(); band < floor {
		band = floor
	}
	if !s.hasEmitted || math.Abs(med-s.emitted) > band {
		s.emitted = med
		s.hasEmitted = true
		return med, true
	}
	return 0, false
}

// stats returns the window's median and median absolute deviation.
func (s *Smoother) stats() (med, mad float64) {
	s.scratch = append(s.scratch[:0], s.window...)
	sort.Float64s(s.scratch)
	med = quantileMid(s.scratch)
	for i, v := range s.scratch {
		s.scratch[i] = math.Abs(v - med)
	}
	sort.Float64s(s.scratch)
	mad = quantileMid(s.scratch)
	return med, mad
}

func quantileMid(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
