package probe

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func meshTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "mesh-test-9",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 3, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 3, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 3, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func meshManager(t testing.TB) *deploy.Manager {
	t.Helper()
	p, err := plan.New(meshTopo(t), plan.Config{
		System:       plan.SystemSpec{Family: "grid", Param: 2},
		Strategy:     plan.StratLP,
		Demand:       8000,
		Reproducible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := deploy.New(p, deploy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// meshFromSnapshot programs a FakeMesh with the deployment's current
// RTT matrix as ground truth.
func meshFromSnapshot(m *deploy.Manager) (*FakeMesh, []string) {
	topo := m.Current().Snapshot.Topology
	mesh := NewFakeMesh(1)
	names := make([]string, topo.Size())
	for i := range names {
		names[i] = topo.Site(i).Name
	}
	for i := 0; i < topo.Size(); i++ {
		for j := i + 1; j < topo.Size(); j++ {
			mesh.SetRTT(names[i], names[j], topo.RTT(i, j))
		}
	}
	return mesh, names
}

func meshAgents(t testing.TB, mesh *FakeMesh, names []string, scfg SmootherConfig) []*Agent {
	t.Helper()
	agents := make([]*Agent, 0, len(names))
	for _, site := range names {
		peers := make([]string, 0, len(names)-1)
		for _, p := range names {
			if p != site {
				peers = append(peers, p)
			}
		}
		a, err := NewAgent(AgentConfig{
			Site:      site,
			Peers:     peers,
			Transport: mesh.Transport(site),
			Smoother:  scfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	return agents
}

// countMoves counts history entries whose placement differs from the
// previous entry's.
func countMoves(m *deploy.Manager) int {
	hist := m.History()
	moves := 0
	for i := 1; i < len(hist); i++ {
		prev := hist[i-1].Snapshot.Placement.Targets()
		cur := hist[i].Snapshot.Placement.Targets()
		if !reflect.DeepEqual(prev, cur) {
			moves++
		}
	}
	return moves
}

// noisyStationary is the acceptance scenario's noise model: small
// zero-mean jitter plus a large +25ms spike on every 7th measurement
// of each pair (phase-shifted per pair) — classic transient RTT
// artifacts on a stationary mesh. Fully deterministic in the pair and
// its measurement count.
func noisyStationary(a, b string, n int) float64 {
	h := fnv.New32a()
	h.Write([]byte(a))
	h.Write([]byte{'|'})
	h.Write([]byte(b))
	ph := h.Sum32()
	if (n+int(ph%7))%7 == 0 {
		return 25
	}
	h.Write([]byte{byte(n), byte(n >> 8)})
	return (float64(h.Sum32()%1000)/1000)*0.8 - 0.4
}

// TestProbeNoiseHysteresisSuppressesReplans is the ISSUE acceptance
// criterion: over 100 probe rounds of a noisy-but-stationary mesh, the
// smoothing/hysteresis stack produces zero placement moves, while the
// same mesh with smoothing off (raw passthrough) moves the placement —
// the probe layer, not the move-hysteresis, is what keeps a stationary
// deployment still (both managers run MoveCost 0).
func TestProbeNoiseHysteresisSuppressesReplans(t *testing.T) {
	run := func(t *testing.T, scfg SmootherConfig) (*deploy.Manager, int) {
		t.Helper()
		m := meshManager(t)
		mesh, names := meshFromSnapshot(m)
		mesh.SetNoiseFunc(noisyStationary)
		agents := meshAgents(t, mesh, names, scfg)
		b := NewBatcher(ManagerPoster{M: m})
		ctx := context.Background()
		rounds := 0
		for round := 0; round < 100; round++ {
			for _, a := range agents {
				deltas, err := a.Round(ctx)
				if err != nil {
					t.Fatal(err)
				}
				b.Add(deltas...)
			}
			if n, err := b.Flush(ctx); err != nil {
				t.Fatal(err)
			} else if n > 0 {
				rounds++
			}
		}
		return m, rounds
	}

	t.Run("smoothing-on", func(t *testing.T) {
		m, flushes := run(t, SmootherConfig{Window: 9, MADGate: 4, Noise: 0.05, NoiseFloorMS: 0.5})
		if moves := countMoves(m); moves != 0 {
			t.Errorf("smoothed mesh moved the placement %d times, want 0", moves)
		}
		// The only emissions are the warmup baselines: a handful of
		// posting windows, then silence.
		if flushes == 0 || flushes > 10 {
			t.Errorf("smoothed mesh posted %d windows, want a few warmup windows only", flushes)
		}
		if v := m.Current().Snapshot.Version; v > 12 {
			t.Errorf("smoothed mesh published %d versions over 100 rounds", v)
		}
	})
	t.Run("smoothing-off", func(t *testing.T) {
		m, flushes := run(t, SmootherConfig{Raw: true})
		if moves := countMoves(m); moves == 0 {
			t.Error("raw mesh never moved the placement; the scenario cannot demonstrate suppression")
		}
		if flushes < 90 {
			t.Errorf("raw mesh posted only %d windows, want ~100", flushes)
		}
	})
}

func TestAgentRoundEmitsAfterWarmup(t *testing.T) {
	mesh := NewFakeMesh(3)
	mesh.SetRTT("a", "b", 50)
	mesh.SetRTT("a", "c", 80)
	a, err := NewAgent(AgentConfig{
		Site:      "a",
		Peers:     []string{"b", "c"},
		Transport: mesh.Transport("a"),
		Smoother:  SmootherConfig{Window: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		deltas, err := a.Round(ctx)
		if err != nil || len(deltas) != 0 {
			t.Fatalf("round %d: deltas %v err %v, want none yet", round, deltas, err)
		}
	}
	deltas, err := a.Round(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []deploy.Delta{
		{Kind: deploy.KindRTT, A: "a", B: "b", Value: 50},
		{Kind: deploy.KindRTT, A: "a", B: "c", Value: 80},
	}
	if !reflect.DeepEqual(deltas, want) {
		t.Fatalf("warmup emissions %+v, want %+v", deltas, want)
	}
}

func TestAgentSkipsFailingPeer(t *testing.T) {
	mesh := NewFakeMesh(3)
	mesh.SetRTT("a", "b", 50)
	mesh.SetRTT("a", "c", 80)
	mesh.SetError("a", "c", errors.New("peer down"))
	a, err := NewAgent(AgentConfig{
		Site:      "a",
		Peers:     []string{"b", "c"},
		Transport: mesh.Transport("a"),
		Smoother:  SmootherConfig{Window: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	deltas, rerr := a.Round(context.Background())
	if rerr == nil {
		t.Fatal("dead peer produced no error")
	}
	if len(deltas) != 1 || deltas[0].B != "b" {
		t.Fatalf("deltas %+v, want just the live peer", deltas)
	}
	if a.Errors() != 1 {
		t.Fatalf("error count %d, want 1", a.Errors())
	}
}

func TestUDPTransportMeasuresEcho(t *testing.T) {
	echo, err := ListenEcho("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	tr := NewUDPTransport(map[string]string{"peer": echo.Addr()}, time.Second)
	ms, err := tr.Measure(context.Background(), "peer")
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 || ms > 1000 {
		t.Fatalf("loopback RTT %v ms", ms)
	}
	if _, err := tr.Measure(context.Background(), "nobody"); err == nil {
		t.Fatal("unknown peer measured")
	}
	dead := NewUDPTransport(map[string]string{"gone": "127.0.0.1:1"}, 50*time.Millisecond)
	if _, err := dead.Measure(context.Background(), "gone"); err == nil {
		t.Fatal("unreachable peer measured")
	}
}

func TestReporterWindowsAndHysteresis(t *testing.T) {
	r := NewReporter(ReporterConfig{Noise: 0.05})

	if got := r.Flush(); got != nil {
		t.Fatalf("empty window emitted %+v", got)
	}

	r.Observe("a", 600)
	r.Observe("b", 300)
	r.Observe("c", 100)
	ds := r.Flush()
	if len(ds) != 2 || ds[0].Kind != deploy.KindDemand || ds[1].Kind != deploy.KindWeights {
		t.Fatalf("first window emitted %+v", ds)
	}
	if ds[0].Value != 1000 {
		t.Fatalf("demand %v, want 1000", ds[0].Value)
	}
	// Mean-1 normalization over the three observed sites.
	want := map[string]float64{"a": 1.8, "b": 0.9, "c": 0.3}
	for site, w := range want {
		if got := ds[1].Weights[site]; math.Abs(got-w) > 1e-9 {
			t.Fatalf("weight[%s] = %v, want %v", site, got, w)
		}
	}

	// A statistically identical window is absorbed by hysteresis.
	r.Observe("a", 610)
	r.Observe("b", 295)
	r.Observe("c", 99)
	if ds := r.Flush(); ds != nil {
		t.Fatalf("steady window re-emitted %+v", ds)
	}

	// A flash crowd on one site re-emits.
	r.Observe("a", 600)
	r.Observe("b", 2400)
	r.Observe("c", 100)
	ds = r.Flush()
	if len(ds) != 2 {
		t.Fatalf("flash crowd emitted %+v", ds)
	}
	if ds[0].Value != 3100 {
		t.Fatalf("flash-crowd demand %v", ds[0].Value)
	}

	// A site that goes silent keeps a positive floor weight: the deltas
	// must stay valid for deploy.
	r.Observe("a", 500)
	r.Observe("b", 2000)
	ds = r.Flush()
	if len(ds) != 2 {
		t.Fatalf("silent-site window emitted %+v", ds)
	}
	for _, d := range ds {
		if err := d.Validate(); err != nil {
			t.Fatalf("reporter emitted invalid delta: %v", err)
		}
	}
	if w := ds[1].Weights["c"]; w <= 0 {
		t.Fatalf("silent site weight %v, want positive floor", w)
	}
}

// flakyPoster fails the first n posts with a transient error.
type flakyPoster struct {
	mu    sync.Mutex
	fails int
	got   [][]deploy.Delta
}

func (p *flakyPoster) Post(_ context.Context, batch []deploy.Delta) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fails > 0 {
		p.fails--
		return errors.New("transient")
	}
	cp := append([]deploy.Delta(nil), batch...)
	p.got = append(p.got, cp)
	return nil
}

func TestBatcherCoalescesAndRequeues(t *testing.T) {
	p := &flakyPoster{fails: 1}
	b := NewBatcher(p)
	ctx := context.Background()

	b.Add(deploy.Delta{Kind: deploy.KindRTT, A: "a", B: "b", Value: 10})
	b.Add(deploy.Delta{Kind: deploy.KindRTT, A: "b", B: "a", Value: 12})
	b.Add(deploy.Delta{Kind: deploy.KindDemand, Value: 100})
	if got := b.Pending(); got != 2 {
		t.Fatalf("pending %d after coalescing adds, want 2", got)
	}

	// First flush fails; the batch is re-queued.
	if _, err := b.Flush(ctx); err == nil {
		t.Fatal("flaky post succeeded")
	}
	if got := b.Pending(); got != 2 {
		t.Fatalf("pending %d after failed flush, want 2 re-queued", got)
	}
	// A newer value added between retries supersedes the re-queued one.
	b.Add(deploy.Delta{Kind: deploy.KindRTT, A: "a", B: "b", Value: 14})
	if _, err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending %d after successful flush", b.Pending())
	}
	if len(p.got) != 1 {
		t.Fatalf("%d batches posted, want 1", len(p.got))
	}
	want := []deploy.Delta{
		{Kind: deploy.KindDemand, Value: 100},
		{Kind: deploy.KindRTT, A: "a", B: "b", Value: 14},
	}
	if !reflect.DeepEqual(p.got[0], want) {
		t.Fatalf("posted %+v, want %+v", p.got[0], want)
	}

	// Permanent rejections drop the batch instead of retrying forever.
	drop := NewBatcher(PostFunc(func(context.Context, []deploy.Delta) error {
		return fmt.Errorf("%w: 400", ErrGone)
	}))
	drop.Add(deploy.Delta{Kind: deploy.KindDemand, Value: 5})
	if _, err := drop.Flush(ctx); !errors.Is(err, ErrGone) {
		t.Fatalf("err %v, want ErrGone", err)
	}
	if drop.Pending() != 0 || drop.Dropped() != 1 {
		t.Fatalf("pending %d dropped %d, want 0/1", drop.Pending(), drop.Dropped())
	}
}

func TestHTTPPosterRetriesAndHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	var codes []int
	status := []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusOK}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		code := status[0]
		if len(status) > 1 {
			status = status[1:]
		}
		codes = append(codes, code)
		mu.Unlock()
		if code != http.StatusOK {
			w.Header().Set("Retry-After", "0")
		}
		w.WriteHeader(code)
	}))
	defer srv.Close()

	p := &HTTPPoster{URL: srv.URL, Backoff: time.Millisecond}
	if err := p.Post(context.Background(), []deploy.Delta{{Kind: deploy.KindDemand, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(codes)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("%d attempts, want 3", n)
	}

	// 400 is permanent: one attempt, ErrGone.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer bad.Close()
	pb := &HTTPPoster{URL: bad.URL, Backoff: time.Millisecond}
	if err := pb.Post(context.Background(), []deploy.Delta{{Kind: deploy.KindDemand, Value: 1}}); !errors.Is(err, ErrGone) {
		t.Fatalf("err %v, want ErrGone", err)
	}
}

// TestMeshEndToEndOverHTTP wires the full loop the way quorumprobe
// does — agents → batcher → HTTPPoster → serving tenant → manager —
// and drives a genuine RTT drift through it.
func TestMeshEndToEndOverHTTP(t *testing.T) {
	m := meshManager(t)
	mesh, names := meshFromSnapshot(m)
	srv := httptest.NewServer(newDeltasHandler(t, m))
	defer srv.Close()

	agents := meshAgents(t, mesh, names, SmootherConfig{Window: 3, Noise: 0.05})
	b := NewBatcher(&HTTPPoster{URL: srv.URL, Backoff: time.Millisecond})
	ctx := context.Background()
	round := func() {
		t.Helper()
		for _, a := range agents {
			deltas, err := a.Round(ctx)
			if err != nil {
				t.Fatal(err)
			}
			b.Add(deltas...)
		}
		if _, err := b.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		round() // warmup baseline
	}
	// A noise-free mesh measures exactly what the planner already has:
	// the warmup batch applies as an effective no-op and publishes no
	// version — matching telemetry is not news.
	v1 := m.Current().Snapshot.Version
	if v1 != 1 {
		t.Fatalf("matching warmup telemetry published version %d, want 1", v1)
	}
	// Drift one inter-region link by 3×: the mesh must notice and the
	// deployment must re-plan.
	topo := m.Current().Snapshot.Topology
	mesh.SetRTT(names[0], names[len(names)-1], topo.RTT(0, topo.Size()-1)*3)
	for i := 0; i < 4; i++ {
		round()
	}
	if v2 := m.Current().Snapshot.Version; v2 <= v1 {
		t.Fatalf("drift never published: version stayed %d", v2)
	}
}

// newDeltasHandler adapts a manager to the POST /v1/deltas wire shape
// without importing the serve package (which would be a cycle-free but
// needless dependency for this test).
func newDeltasHandler(t *testing.T, m *deploy.Manager) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Deltas []deploy.Delta `json:"deltas"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := m.Apply(req.Deltas); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, deploy.ErrReplan) {
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
}
