package probe

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// AgentConfig configures one mesh agent: the site it probes from, the
// peers forming its row of the mesh, the transport it measures over,
// and the per-pair smoothing.
type AgentConfig struct {
	// Site is the local site's name (the A side of emitted rtt deltas).
	Site string
	// Peers are the sites this agent measures against. An N-agent mesh
	// covers every pair twice (once per direction); the batcher's
	// coalescing collapses the redundancy.
	Peers []string
	// Transport performs the measurements.
	Transport Transport
	// Smoother tunes the per-peer filters.
	Smoother SmootherConfig
	// Timeout bounds one measurement (default 2s).
	Timeout time.Duration
}

func (c AgentConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

// Agent measures one row of the RTT mesh. Round is synchronous (tests
// drive it directly for determinism); Run loops it on an interval.
type Agent struct {
	cfg    AgentConfig
	smooth map[string]*Smoother
	errs   atomic.Uint64
}

// NewAgent validates the configuration and builds the per-peer
// smoothers.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Site == "" {
		return nil, fmt.Errorf("probe: agent needs a site name")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("probe: agent %s needs a transport", cfg.Site)
	}
	smooth := make(map[string]*Smoother, len(cfg.Peers))
	for _, peer := range cfg.Peers {
		if peer == cfg.Site {
			return nil, fmt.Errorf("probe: agent %s lists itself as a peer", cfg.Site)
		}
		if _, dup := smooth[peer]; dup {
			return nil, fmt.Errorf("probe: agent %s lists peer %s twice", cfg.Site, peer)
		}
		smooth[peer] = NewSmoother(cfg.Smoother)
	}
	return &Agent{cfg: cfg, smooth: smooth}, nil
}

// Site returns the agent's local site name.
func (a *Agent) Site() string { return a.cfg.Site }

// Errors returns the cumulative measurement-failure count.
func (a *Agent) Errors() uint64 { return a.errs.Load() }

// Round probes every peer once, in configured order, and returns the
// rtt deltas that cleared smoothing and hysteresis. A failed
// measurement skips that peer (its smoother keeps its state — a
// dropped probe is not a 0ms sample) and is reported in the joined
// error alongside the successful peers' deltas.
func (a *Agent) Round(ctx context.Context) ([]deploy.Delta, error) {
	var deltas []deploy.Delta
	var errs []error
	for _, peer := range a.cfg.Peers {
		mctx, cancel := context.WithTimeout(ctx, a.cfg.timeout())
		ms, err := a.cfg.Transport.Measure(mctx, peer)
		cancel()
		if err != nil {
			a.errs.Add(1)
			errs = append(errs, err)
			continue
		}
		if v, ok := a.smooth[peer].Observe(ms); ok {
			deltas = append(deltas, deploy.Delta{Kind: deploy.KindRTT, A: a.cfg.Site, B: peer, Value: v})
		}
	}
	return deltas, errors.Join(errs...)
}

// Run probes on the interval until the context ends, feeding emitted
// deltas into the sink batcher. Measurement errors are absorbed (and
// counted — see Errors): a mesh with a dead peer keeps measuring the
// live ones.
func (a *Agent) Run(ctx context.Context, interval time.Duration, sink *Batcher) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		deltas, _ := a.Round(ctx)
		if len(deltas) > 0 {
			sink.Add(deltas...)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
