package probe

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FakeMesh is an injectable transport for tests and simulations: a
// programmable symmetric base RTT matrix plus deterministic noise.
// Every agent of a simulated mesh shares one FakeMesh and measures
// through Transport(site).
type FakeMesh struct {
	mu    sync.Mutex
	rng   *rand.Rand
	base  map[string]float64
	count map[string]int
	errs  map[string]error
	noise float64
	// noiseFn, when set, replaces the uniform noise: it receives the
	// sorted pair and the pair's 1-based measurement count, so tests can
	// script exact noise sequences independent of goroutine schedule.
	noiseFn func(a, b string, n int) float64
}

// NewFakeMesh builds an empty mesh; the seed drives the uniform noise.
func NewFakeMesh(seed int64) *FakeMesh {
	return &FakeMesh{
		rng:   rand.New(rand.NewSource(seed)),
		base:  make(map[string]float64),
		count: make(map[string]int),
		errs:  make(map[string]error),
	}
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// SetRTT programs the symmetric base RTT of one pair.
func (f *FakeMesh) SetRTT(a, b string, ms float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.base[pairKey(a, b)] = ms
}

// SetNoise sets the half-width (ms) of uniform additive noise.
func (f *FakeMesh) SetNoise(halfWidthMS float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noise = halfWidthMS
}

// SetNoiseFunc installs a deterministic noise schedule: fn(a, b, n)
// returns the additive noise of the pair's n-th measurement (sorted
// pair, n starts at 1). Overrides SetNoise.
func (f *FakeMesh) SetNoiseFunc(fn func(a, b string, n int) float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noiseFn = fn
}

// SetError makes measurements of the pair fail with err (nil clears).
func (f *FakeMesh) SetError(a, b string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.errs, pairKey(a, b))
		return
	}
	f.errs[pairKey(a, b)] = err
}

// Transport returns the measurement view of one mesh site.
func (f *FakeMesh) Transport(local string) Transport {
	return &fakeTransport{mesh: f, local: local}
}

type fakeTransport struct {
	mesh  *FakeMesh
	local string
}

func (t *fakeTransport) Measure(_ context.Context, peer string) (float64, error) {
	f := t.mesh
	f.mu.Lock()
	defer f.mu.Unlock()
	key := pairKey(t.local, peer)
	if err := f.errs[key]; err != nil {
		return 0, err
	}
	base, ok := f.base[key]
	if !ok {
		return 0, fmt.Errorf("probe: fake mesh has no RTT for %s", key)
	}
	f.count[key]++
	var n float64
	switch {
	case f.noiseFn != nil:
		n = f.noiseFn(minStr(t.local, peer), maxStr(t.local, peer), f.count[key])
	case f.noise > 0:
		n = (f.rng.Float64()*2 - 1) * f.noise
	}
	v := base + n
	if v < 0.001 {
		v = 0.001
	}
	return v, nil
}

func minStr(a, b string) string {
	if a < b {
		return a
	}
	return b
}

func maxStr(a, b string) string {
	if a < b {
		return b
	}
	return a
}

// EchoServer answers probe pings: every UDP datagram is echoed back
// verbatim. One runs next to each real mesh agent.
type EchoServer struct {
	pc     net.PacketConn
	closed atomic.Bool
	done   chan struct{}
}

// ListenEcho starts an echo server on addr (e.g. "127.0.0.1:0").
func ListenEcho(addr string) (*EchoServer, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("probe: echo listen: %w", err)
	}
	s := &EchoServer{pc: pc, done: make(chan struct{})}
	go s.loop()
	return s, nil
}

func (s *EchoServer) loop() {
	defer close(s.done)
	buf := make([]byte, 1500)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		_, _ = s.pc.WriteTo(buf[:n], from)
	}
}

// Addr returns the bound address (with the resolved port).
func (s *EchoServer) Addr() string { return s.pc.LocalAddr().String() }

// Close stops the server.
func (s *EchoServer) Close() error {
	s.closed.Store(true)
	err := s.pc.Close()
	<-s.done
	return err
}

// UDPTransport measures RTTs with nonce-tagged UDP echo exchanges
// against peer EchoServers.
type UDPTransport struct {
	mu      sync.Mutex
	peers   map[string]string // peer name → udp address
	timeout time.Duration
	seq     atomic.Uint64
}

// NewUDPTransport builds a transport from a peer-name → address map.
// timeout bounds one exchange (default 2s) unless the context's
// deadline is sooner.
func NewUDPTransport(peers map[string]string, timeout time.Duration) *UDPTransport {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	m := make(map[string]string, len(peers))
	for name, addr := range peers {
		m[name] = addr
	}
	return &UDPTransport{peers: m, timeout: timeout}
}

// SetPeer adds or updates one peer's echo address.
func (t *UDPTransport) SetPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[name] = addr
}

func (t *UDPTransport) addr(peer string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.peers[peer]
	return addr, ok
}

// Measure sends one nonce-tagged datagram and times the echo. Stale
// echoes from earlier timed-out probes are discarded by nonce.
func (t *UDPTransport) Measure(ctx context.Context, peer string) (float64, error) {
	addr, ok := t.addr(peer)
	if !ok {
		return 0, fmt.Errorf("probe: unknown peer %q", peer)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return 0, fmt.Errorf("probe: dial %s: %w", peer, err)
	}
	defer conn.Close()

	deadline := time.Now().Add(t.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return 0, err
	}

	var payload [16]byte
	binary.BigEndian.PutUint64(payload[:8], t.seq.Add(1))
	binary.BigEndian.PutUint64(payload[8:], uint64(time.Now().UnixNano()))

	start := time.Now()
	if _, err := conn.Write(payload[:]); err != nil {
		return 0, fmt.Errorf("probe: ping %s: %w", peer, err)
	}
	var buf [1500]byte
	for {
		n, err := conn.Read(buf[:])
		if err != nil {
			return 0, fmt.Errorf("probe: echo from %s: %w", peer, err)
		}
		if n == len(payload) && [16]byte(buf[:16]) == payload {
			break
		}
		// A stale echo (previous probe's nonce): keep reading until the
		// deadline.
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if ms < 0.001 {
		ms = 0.001
	}
	return ms, nil
}
