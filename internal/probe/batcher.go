package probe

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// Poster posts one coalesced delta batch to a deployment.
type Poster interface {
	Post(ctx context.Context, batch []deploy.Delta) error
}

// PostFunc adapts a function to the Poster interface.
type PostFunc func(ctx context.Context, batch []deploy.Delta) error

// Post implements Poster.
func (f PostFunc) Post(ctx context.Context, batch []deploy.Delta) error { return f(ctx, batch) }

// ManagerPoster applies batches straight to an in-process manager —
// the no-HTTP path for tests, simulations, and embedded deployments.
type ManagerPoster struct {
	M *deploy.Manager
}

// Post implements Poster. A re-plan failure (deploy.ErrReplan) counts
// as posted: the deltas are in force, re-posting them would not help.
func (p ManagerPoster) Post(_ context.Context, batch []deploy.Delta) error {
	_, err := p.M.Apply(batch)
	if errors.Is(err, deploy.ErrReplan) {
		return nil
	}
	return err
}

// ErrGone marks a permanent post rejection (4xx other than 429): the
// batch is malformed or addressed to a missing deployment, and
// retrying cannot fix it. The batcher drops such batches instead of
// re-queueing them forever.
var ErrGone = errors.New("probe: batch permanently rejected")

// HTTPPoster posts batches to a quorumd deltas endpoint with bounded
// retry and exponential backoff, honoring Retry-After on 429/503 —
// the server's backpressure signals push the mesh to re-coalesce
// locally instead of hammering a busy apply loop.
type HTTPPoster struct {
	// URL is the deltas endpoint, e.g.
	// http://host:8080/v1/deltas or .../v1/deployments/<name>/deltas.
	URL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// MaxAttempts bounds tries per batch (default 5).
	MaxAttempts int
	// Backoff is the initial retry delay (default 200ms), doubled per
	// attempt; a Retry-After header overrides it.
	Backoff time.Duration
}

func (p *HTTPPoster) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return http.DefaultClient
}

func (p *HTTPPoster) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 5
	}
	return p.MaxAttempts
}

func (p *HTTPPoster) backoff() time.Duration {
	if p.Backoff <= 0 {
		return 200 * time.Millisecond
	}
	return p.Backoff
}

// Post implements Poster. 2xx is success; 409 (applied but not
// plannable) is success too — the deltas are in force. Other 4xx are
// permanent (ErrGone); 429/503/network errors retry with backoff.
func (p *HTTPPoster) Post(ctx context.Context, batch []deploy.Delta) error {
	body, err := json.Marshal(struct {
		Deltas []deploy.Delta `json:"deltas"`
	}{batch})
	if err != nil {
		return fmt.Errorf("probe: encoding batch: %w", err)
	}
	backoff := p.backoff()
	var last error
	for attempt := 0; attempt < p.maxAttempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.URL, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := p.client().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return nil
		case resp.StatusCode == http.StatusConflict:
			// Applied but not plannable: the world changed, the plan will
			// catch up on a later batch. Re-posting would double-apply.
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			last = fmt.Errorf("probe: post %s: %s", p.URL, resp.Status)
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
					backoff = time.Duration(secs) * time.Second
				}
			}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return fmt.Errorf("%w: %s: %s", ErrGone, resp.Status, bytes.TrimSpace(msg))
		default:
			last = fmt.Errorf("probe: post %s: %s: %s", p.URL, resp.Status, bytes.TrimSpace(msg))
		}
	}
	return fmt.Errorf("probe: giving up after %d attempts: %w", p.maxAttempts(), last)
}

// Batcher is the client-side debouncer between delta producers (mesh
// agents, demand reporters) and a deployment: producers Add emitted
// deltas at any rate, the batcher coalesces them locally with
// deploy.Coalesce semantics, and only the cadence loop posts — one
// batch per window, never mid-window. A window of probe chatter
// becomes at most one delta per site pair and one published version.
type Batcher struct {
	poster Poster
	// OnFlush, when set, observes every posted window (n = batch size).
	// Set it before Run.
	OnFlush func(n int, err error)

	mu      sync.Mutex
	pending []deploy.Delta
	dropped uint64
}

// NewBatcher builds a batcher over the given poster.
func NewBatcher(p Poster) *Batcher {
	return &Batcher{poster: p}
}

// Add coalesces deltas into the pending window.
func (b *Batcher) Add(ds ...deploy.Delta) {
	if len(ds) == 0 {
		return
	}
	b.mu.Lock()
	b.pending = deploy.Coalesce(append(b.pending, ds...))
	b.mu.Unlock()
}

// Pending returns the coalesced pending-delta count.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Dropped returns how many deltas were discarded on permanent
// rejections (ErrGone).
func (b *Batcher) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Flush posts the pending window (if any) as one batch. On a transient
// failure the batch is re-queued ahead of anything added meanwhile —
// coalesced again, so newer values still supersede re-queued ones; on
// a permanent rejection (ErrGone) the batch is dropped. Returns the
// attempted batch size.
func (b *Batcher) Flush(ctx context.Context) (int, error) {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) == 0 {
		return 0, nil
	}
	err := b.poster.Post(ctx, batch)
	if err != nil && !errors.Is(err, ErrGone) {
		b.mu.Lock()
		b.pending = deploy.Coalesce(append(batch, b.pending...))
		b.mu.Unlock()
	} else if errors.Is(err, ErrGone) {
		b.mu.Lock()
		b.dropped += uint64(len(batch))
		b.mu.Unlock()
	}
	return len(batch), err
}

// Run posts on the cadence until the context ends, then makes one
// best-effort final flush so a drained window is not lost on shutdown.
func (b *Batcher) Run(ctx context.Context, cadence time.Duration) {
	if cadence <= 0 {
		cadence = 5 * time.Second
	}
	ticker := time.NewTicker(cadence)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			n, err := b.Flush(fctx)
			cancel()
			if b.OnFlush != nil && n > 0 {
				b.OnFlush(n, err)
			}
			return
		case <-ticker.C:
			n, err := b.Flush(ctx)
			if b.OnFlush != nil && n > 0 {
				b.OnFlush(n, err)
			}
		}
	}
}
