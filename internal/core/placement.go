// Package core implements the paper's model (§4): quorum placements
// f : U → V, client access strategies p_v, the load they induce on network
// nodes, and the response-time objective
//
//	ρ_f(v, Q) = max_{w ∈ f(Q)} ( d(v, w) + α·load_f(w) )        (4.1)
//	Δ_f(v)   = Σ_Q p_v(Q) · ρ_f(v, Q)                            (4.2)
//
// minimized on average over clients. Setting α = 0 turns the objective
// into average network delay (§6); α = op_srv_time × client_demand models
// processing delay under load (§7).
package core

import (
	"fmt"
	"sort"

	"github.com/quorumnet/quorumnet/internal/topology"
)

// Placement maps universe elements to network nodes: element u lives on
// node Node(u). Placements may be one-to-one (preserving the original
// system's fault tolerance) or many-to-one (§4.1.2).
type Placement struct {
	target []int
}

// NewPlacement builds a placement from the element→node table. It
// validates every node index against the topology.
func NewPlacement(target []int, topo *topology.Topology) (Placement, error) {
	if len(target) == 0 {
		return Placement{}, fmt.Errorf("core: empty placement")
	}
	for u, w := range target {
		if w < 0 || w >= topo.Size() {
			return Placement{}, fmt.Errorf("core: element %d placed on invalid node %d", u, w)
		}
	}
	return Placement{target: append([]int(nil), target...)}, nil
}

// SingletonPlacement places all n elements of a universe on one node.
func SingletonPlacement(n, node int, topo *topology.Topology) (Placement, error) {
	t := make([]int, n)
	for i := range t {
		t[i] = node
	}
	return NewPlacement(t, topo)
}

// UniverseSize returns the number of placed elements.
func (f Placement) UniverseSize() int { return len(f.target) }

// Node returns the node hosting element u.
func (f Placement) Node(u int) int { return f.target[u] }

// Targets returns a copy of the element→node table.
func (f Placement) Targets() []int { return append([]int(nil), f.target...) }

// Support returns the distinct nodes hosting at least one element, sorted
// ascending ("the support set of the placement").
func (f Placement) Support() []int {
	seen := map[int]bool{}
	for _, w := range f.target {
		seen[w] = true
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// ElementsOn returns the elements hosted by node w, sorted ascending.
func (f Placement) ElementsOn(w int) []int {
	var out []int
	for u, node := range f.target {
		if node == w {
			out = append(out, u)
		}
	}
	return out
}

// IsOneToOne reports whether no two elements share a node.
func (f Placement) IsOneToOne() bool {
	seen := map[int]bool{}
	for _, w := range f.target {
		if seen[w] {
			return false
		}
		seen[w] = true
	}
	return true
}

// QuorumNodes returns the distinct nodes f(Q) hosting the given quorum's
// elements.
func (f Placement) QuorumNodes(elems []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(elems))
	for _, u := range elems {
		w := f.target[u]
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}
