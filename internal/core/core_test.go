package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// testTopo builds a deterministic random metric topology of size n.
func testTopo(t *testing.T, n int, seed int64) *topology.Topology {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1+rng.Float64()*99)
		}
	}
	m.MetricClosure()
	sites := make([]topology.Site, n)
	tp, err := topology.New("test", sites, m)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func mustGrid(t *testing.T, k int) quorum.Grid {
	t.Helper()
	s, err := quorum.NewGrid(k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustThreshold(t *testing.T, q, n int) quorum.Threshold {
	t.Helper()
	s, err := quorum.NewThreshold(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func identityPlacement(t *testing.T, n int, topo *topology.Topology) Placement {
	t.Helper()
	target := make([]int, n)
	for i := range target {
		target[i] = i
	}
	f, err := NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlacementValidation(t *testing.T) {
	topo := testTopo(t, 5, 1)
	if _, err := NewPlacement(nil, topo); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := NewPlacement([]int{0, 7}, topo); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := NewPlacement([]int{0, -1}, topo); err == nil {
		t.Error("negative node accepted")
	}
}

func TestPlacementAccessors(t *testing.T) {
	topo := testTopo(t, 5, 2)
	f, err := NewPlacement([]int{2, 2, 4, 0}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if f.UniverseSize() != 4 {
		t.Errorf("UniverseSize = %d, want 4", f.UniverseSize())
	}
	if f.Node(2) != 4 {
		t.Errorf("Node(2) = %d, want 4", f.Node(2))
	}
	if got, want := f.Support(), []int{0, 2, 4}; !equalInts(got, want) {
		t.Errorf("Support = %v, want %v", got, want)
	}
	if got, want := f.ElementsOn(2), []int{0, 1}; !equalInts(got, want) {
		t.Errorf("ElementsOn(2) = %v, want %v", got, want)
	}
	if f.IsOneToOne() {
		t.Error("IsOneToOne true for many-to-one placement")
	}
	if got, want := f.QuorumNodes([]int{0, 1, 3}), []int{0, 2}; !equalInts(got, want) {
		t.Errorf("QuorumNodes = %v, want %v", got, want)
	}
	one := identityPlacement(t, 5, topo)
	if !one.IsOneToOne() {
		t.Error("IsOneToOne false for identity placement")
	}
}

func TestPlacementTargetsIsCopy(t *testing.T) {
	topo := testTopo(t, 3, 3)
	orig := []int{0, 1, 2}
	f, err := NewPlacement(orig, topo)
	if err != nil {
		t.Fatal(err)
	}
	orig[0] = 2 // caller mutates its slice
	if f.Node(0) != 0 {
		t.Error("placement aliased caller's slice")
	}
	tg := f.Targets()
	tg[1] = 0
	if f.Node(1) != 1 {
		t.Error("Targets() aliased internal slice")
	}
}

func TestSingletonPlacement(t *testing.T) {
	topo := testTopo(t, 6, 4)
	f, err := SingletonPlacement(9, 3, topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Support(); !equalInts(got, []int{3}) {
		t.Errorf("Support = %v, want [3]", got)
	}
}

func TestNewEvalValidation(t *testing.T) {
	topo := testTopo(t, 9, 5)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	if _, err := NewEval(topo, sys, f, -1); err == nil {
		t.Error("negative alpha accepted")
	}
	short := identityPlacement(t, 4, topo)
	if _, err := NewEval(topo, sys, short, 0); err == nil {
		t.Error("placement/universe size mismatch accepted")
	}
	if _, err := NewEval(nil, sys, f, 0); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestSetClients(t *testing.T) {
	topo := testTopo(t, 9, 6)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetClients([]int{1, 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetClients(nil); err == nil {
		t.Error("empty client set accepted")
	}
	if err := e.SetClients([]int{99}); err == nil {
		t.Error("out-of-range client accepted")
	}
}

// TestClosestMatchesBruteForce checks Δ under the closest strategy equals
// min over quorums of the max network delay, per client.
func TestClosestMatchesBruteForce(t *testing.T) {
	topo := testTopo(t, 12, 7)
	for _, sys := range []quorum.System{mustGrid(t, 3), mustThreshold(t, 4, 7)} {
		f := identityPlacement(t, sys.UniverseSize(), topo)
		e, err := NewEval(topo, sys, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range e.Clients {
			got := ClosestStrategy{}.ExpectedMax(e, v, e.elementNetCosts(v))
			want := math.Inf(1)
			for i := 0; i < sys.NumQuorums(); i++ {
				maxC := 0.0
				for _, u := range sys.Quorum(i) {
					if d := topo.RTT(v, f.Node(u)); d > maxC {
						maxC = d
					}
				}
				if maxC < want {
					want = maxC
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s client %d: closest delay %v, brute force %v", sys.Name(), v, got, want)
			}
		}
	}
}

// TestExplicitUniformMatchesBalanced: an explicit strategy with uniform
// probabilities must agree with BalancedStrategy on every measure.
func TestExplicitUniformMatchesBalanced(t *testing.T) {
	topo := testTopo(t, 10, 8)
	sys := mustGrid(t, 3)
	// Many-to-one placement to exercise node aggregation.
	target := []int{0, 1, 2, 3, 4, 4, 5, 6, 0}
	f, err := NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEval(topo, sys, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.NumQuorums()
	probs := make([][]float64, len(e.Clients))
	for k := range probs {
		probs[k] = make([]float64, m)
		for i := range probs[k] {
			probs[k][i] = 1 / float64(m)
		}
	}
	exp := &ExplicitStrategy{Probs: probs}
	if err := exp.Validate(e); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []LoadMode{LoadMultiplicity, LoadDedup} {
		e.Mode = mode
		gotR := e.AvgResponseTime(exp)
		wantR := e.AvgResponseTime(BalancedStrategy{})
		if math.Abs(gotR-wantR) > 1e-9 {
			t.Errorf("mode %v: explicit uniform response %v, balanced %v", mode, gotR, wantR)
		}
		gotL := e.NodeLoads(exp)
		wantL := e.NodeLoads(BalancedStrategy{})
		for w := range gotL {
			if math.Abs(gotL[w]-wantL[w]) > 1e-9 {
				t.Errorf("mode %v node %d: explicit load %v, balanced %v", mode, w, gotL[w], wantL[w])
			}
		}
	}
}

func TestBalancedLoadsSumToQuorumSize(t *testing.T) {
	// Multiplicity: Σ_w load_f(w) = Σ_u load(u) = q for any placement.
	topo := testTopo(t, 10, 9)
	sys := mustThreshold(t, 13, 25)
	target := make([]int, 25)
	for u := range target {
		target[u] = u % 10
	}
	f, err := NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range e.NodeLoads(BalancedStrategy{}) {
		sum += l
	}
	if math.Abs(sum-float64(sys.QuorumSize())) > 1e-9 {
		t.Errorf("total balanced load = %v, want %d", sum, sys.QuorumSize())
	}
}

func TestDedupNeverExceedsMultiplicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		m := graph.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, 1+rng.Float64()*50)
			}
		}
		m.MetricClosure()
		topo, err := topology.New("t", make([]topology.Site, n), m)
		if err != nil {
			return false
		}
		sys, err := quorum.NewGrid(2 + rng.Intn(2))
		if err != nil {
			return false
		}
		target := make([]int, sys.UniverseSize())
		for u := range target {
			target[u] = rng.Intn(n)
		}
		f2, err := NewPlacement(target, topo)
		if err != nil {
			return false
		}
		e, err := NewEval(topo, sys, f2, 0)
		if err != nil {
			return false
		}
		for _, s := range []Strategy{ClosestStrategy{}, BalancedStrategy{}} {
			e.Mode = LoadMultiplicity
			mult := e.NodeLoads(s)
			e.Mode = LoadDedup
			dedup := e.NodeLoads(s)
			for w := range mult {
				if dedup[w] > mult[w]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClosestBeatsBalancedOnNetworkDelay(t *testing.T) {
	// The closest strategy minimizes each client's network delay, so its
	// average cannot exceed the balanced strategy's.
	topo := testTopo(t, 15, 10)
	for _, sys := range []quorum.System{mustGrid(t, 3), mustThreshold(t, 8, 15)} {
		f := identityPlacement(t, sys.UniverseSize(), topo)
		e, err := NewEval(topo, sys, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := e.AvgNetworkDelay(ClosestStrategy{})
		b := e.AvgNetworkDelay(BalancedStrategy{})
		if c > b+1e-9 {
			t.Errorf("%s: closest %v > balanced %v", sys.Name(), c, b)
		}
	}
}

func TestResponseTimeMonotoneInAlpha(t *testing.T) {
	topo := testTopo(t, 9, 11)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	prev := -1.0
	for _, alpha := range []float64{0, 10, 50, 200} {
		e, err := NewEval(topo, sys, f, alpha)
		if err != nil {
			t.Fatal(err)
		}
		r := e.AvgResponseTime(BalancedStrategy{})
		if r < prev {
			t.Errorf("response time decreased from %v to %v as alpha grew", prev, r)
		}
		prev = r
	}
}

func TestResponseAtLeastNetworkDelay(t *testing.T) {
	topo := testTopo(t, 9, 12)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 75)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{ClosestStrategy{}, BalancedStrategy{}} {
		if resp, net := e.AvgResponseTime(s), e.AvgNetworkDelay(s); resp < net-1e-9 {
			t.Errorf("%s: response %v < network delay %v", s.Name(), resp, net)
		}
	}
}

func TestSingletonEvaluation(t *testing.T) {
	topo := testTopo(t, 8, 13)
	f, err := SingletonPlacement(1, 2, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEval(topo, quorum.Singleton{}, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for v := 0; v < 8; v++ {
		want += topo.RTT(v, 2)
	}
	want /= 8
	for _, s := range []Strategy{ClosestStrategy{}, BalancedStrategy{}} {
		if got := e.AvgNetworkDelay(s); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: singleton delay %v, want %v", s.Name(), got, want)
		}
	}
}

func TestExplicitValidate(t *testing.T) {
	topo := testTopo(t, 9, 14)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := sys.NumQuorums()

	good := uniformProbs(len(e.Clients), m)
	if err := (&ExplicitStrategy{Probs: good}).Validate(e); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}

	short := uniformProbs(3, m)
	if err := (&ExplicitStrategy{Probs: short}).Validate(e); err == nil {
		t.Error("row count mismatch accepted")
	}

	badSum := uniformProbs(len(e.Clients), m)
	badSum[0][0] += 0.5
	if err := (&ExplicitStrategy{Probs: badSum}).Validate(e); err == nil {
		t.Error("non-normalized distribution accepted")
	}

	negative := uniformProbs(len(e.Clients), m)
	negative[0][0] = -0.2
	negative[0][1] += 0.2 + 1/float64(m)
	if err := (&ExplicitStrategy{Probs: negative}).Validate(e); err == nil {
		t.Error("negative probability accepted")
	}

	big := mustThreshold(t, 25, 49)
	fBig := identityPlacement(t, 49, testTopo(t, 49, 15))
	eBig, err := NewEval(testTopo(t, 49, 15), big, fBig, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&ExplicitStrategy{Probs: nil}).Validate(eBig); err == nil {
		t.Error("explicit strategy on non-enumerable system accepted")
	}
}

func TestProfile(t *testing.T) {
	topo := testTopo(t, 9, 16)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := e.Profile(BalancedStrategy{})
	if p.Strategy != "balanced" {
		t.Errorf("Strategy = %q", p.Strategy)
	}
	if p.AvgResponse < p.AvgNetDelay {
		t.Error("response below network delay in profile")
	}
	if p.MaxNodeLoad <= 0 {
		t.Error("MaxNodeLoad not positive")
	}
}

func TestAlphaForDemand(t *testing.T) {
	if got := AlphaForDemand(16000); math.Abs(got-112) > 1e-9 {
		t.Errorf("AlphaForDemand(16000) = %v, want 112", got)
	}
}

func uniformProbs(rows, m int) [][]float64 {
	out := make([][]float64, rows)
	for k := range out {
		out[k] = make([]float64, m)
		for i := range out[k] {
			out[k][i] = 1 / float64(m)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClientResponseTimeMatchesAverage(t *testing.T) {
	topo := testTopo(t, 9, 17)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 25)
	if err != nil {
		t.Fatal(err)
	}
	s := BalancedStrategy{}
	sum := 0.0
	for _, v := range e.Clients {
		sum += e.ClientResponseTime(s, v)
	}
	if got, want := sum/float64(len(e.Clients)), e.AvgResponseTime(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("per-client mean %v != AvgResponseTime %v", got, want)
	}
}

func TestProfileDedupMode(t *testing.T) {
	topo := testTopo(t, 6, 18)
	sys := mustGrid(t, 3)
	target := []int{0, 0, 1, 1, 2, 2, 3, 3, 4}
	f, err := NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEval(topo, sys, f, 40)
	if err != nil {
		t.Fatal(err)
	}
	e.Mode = LoadMultiplicity
	mult := e.Profile(BalancedStrategy{})
	e.Mode = LoadDedup
	dedup := e.Profile(BalancedStrategy{})
	if dedup.MaxNodeLoad > mult.MaxNodeLoad+1e-9 {
		t.Errorf("dedup max load %v above multiplicity %v", dedup.MaxNodeLoad, mult.MaxNodeLoad)
	}
	if dedup.AvgResponse > mult.AvgResponse+1e-9 {
		t.Errorf("dedup response %v above multiplicity %v", dedup.AvgResponse, mult.AvgResponse)
	}
	if dedup.AvgNetDelay != mult.AvgNetDelay {
		t.Errorf("load mode changed network delay: %v vs %v", dedup.AvgNetDelay, mult.AvgNetDelay)
	}
}

func TestLoadModeString(t *testing.T) {
	if LoadMultiplicity.String() != "multiplicity" || LoadDedup.String() != "dedup" {
		t.Error("LoadMode strings wrong")
	}
	if LoadMode(9).String() == "" {
		t.Error("unknown LoadMode has empty string")
	}
}

func TestClientResponseTimePanicsForNonClient(t *testing.T) {
	topo := testTopo(t, 9, 19)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetClients([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	m := sys.NumQuorums()
	exp := &ExplicitStrategy{Probs: uniformProbs(2, m)}
	defer func() {
		if recover() == nil {
			t.Error("ExpectedMax for non-client did not panic")
		}
	}()
	exp.ExpectedMax(e, 7, make([]float64, 9))
}

func TestClientWeightsValidation(t *testing.T) {
	topo := testTopo(t, 9, 20)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetClientWeights([]float64{1, 2}); err == nil {
		t.Error("wrong-length weights accepted")
	}
	bad := make([]float64, 9)
	for i := range bad {
		bad[i] = 1
	}
	bad[3] = -1
	if err := e.SetClientWeights(bad); err == nil {
		t.Error("negative weight accepted")
	}
	bad[3] = math.NaN()
	if err := e.SetClientWeights(bad); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestUniformWeightsMatchUnweighted(t *testing.T) {
	topo := testTopo(t, 9, 21)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 30)
	if err != nil {
		t.Fatal(err)
	}
	base := e.AvgResponseTime(BalancedStrategy{})
	ws := make([]float64, 9)
	for i := range ws {
		ws[i] = 7 // identical → same normalized shares
	}
	if err := e.SetClientWeights(ws); err != nil {
		t.Fatal(err)
	}
	if got := e.AvgResponseTime(BalancedStrategy{}); math.Abs(got-base) > 1e-9 {
		t.Errorf("uniform weights changed response: %v vs %v", got, base)
	}
}

// TestWeightEqualsDuplication: doubling a client's weight must be
// equivalent to listing that client twice, for loads and response alike.
func TestWeightEqualsDuplication(t *testing.T) {
	topo := testTopo(t, 9, 22)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)

	weighted, err := NewEval(topo, sys, f, 45)
	if err != nil {
		t.Fatal(err)
	}
	if err := weighted.SetClients([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := weighted.SetClientWeights([]float64{2, 1, 1}); err != nil {
		t.Fatal(err)
	}

	duplicated, err := NewEval(topo, sys, f, 45)
	if err != nil {
		t.Fatal(err)
	}
	if err := duplicated.SetClients([]int{0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}

	for _, s := range []Strategy{ClosestStrategy{}, BalancedStrategy{}} {
		rw := weighted.AvgResponseTime(s)
		rd := duplicated.AvgResponseTime(s)
		if math.Abs(rw-rd) > 1e-9 {
			t.Errorf("%s: weighted %v != duplicated %v", s.Name(), rw, rd)
		}
		lw := weighted.NodeLoads(s)
		ld := duplicated.NodeLoads(s)
		for w := range lw {
			if math.Abs(lw[w]-ld[w]) > 1e-9 {
				t.Errorf("%s node %d: weighted load %v != duplicated %v", s.Name(), w, lw[w], ld[w])
			}
		}
	}
}

func TestSetClientsResetsWeights(t *testing.T) {
	topo := testTopo(t, 9, 23)
	sys := mustGrid(t, 3)
	f := identityPlacement(t, 9, topo)
	e, err := NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]float64, 9)
	for i := range ws {
		ws[i] = float64(i + 1)
	}
	if err := e.SetClientWeights(ws); err != nil {
		t.Fatal(err)
	}
	if err := e.SetClients([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Weights were positional; after changing clients they reset.
	if got := e.ClientWeight(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("weight after SetClients = %v, want uniform 0.5", got)
	}
}
