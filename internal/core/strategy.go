package core

import (
	"fmt"
	"math"
)

// LoadMode selects how a node hosting several universe elements is
// charged when a quorum touches more than one of them.
type LoadMode int

const (
	// LoadMultiplicity is the paper's model: a node's load counts each
	// hosted element separately (load_{v,f}(w) = Σ_{u: f(u)=w} load_v(u)).
	LoadMultiplicity LoadMode = iota + 1
	// LoadDedup is the §8 future-work variant: a node executes a request
	// once no matter how many of its elements the quorum contains.
	LoadDedup
)

func (m LoadMode) String() string {
	switch m {
	case LoadMultiplicity:
		return "multiplicity"
	case LoadDedup:
		return "dedup"
	default:
		return fmt.Sprintf("LoadMode(%d)", int(m))
	}
}

// Strategy is a family of per-client access strategies {p_v}: for each
// client, a distribution over the quorums of the evaluation's system.
// Implementations exploit structure so that non-enumerable threshold
// systems remain exactly evaluable.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// ClientNodeLoads returns load_{v,f}(w) for every node w: the
	// expected per-request demand client v places on node w under the
	// given load mode.
	ClientNodeLoads(e *Eval, v int, mode LoadMode) []float64
	// ExpectedMax returns Σ_Q p_v(Q)·max_{u ∈ Q} elemCost[u] for client
	// v, the inner expectation of (4.2) with an arbitrary per-element
	// cost vector.
	ExpectedMax(e *Eval, v int, elemCost []float64) float64
}

// ClosestStrategy is §6's "closest quorum access strategy": every client
// deterministically uses the quorum minimizing its network delay
// max_{w∈f(Q)} d(v, w). Selection ignores load even when the evaluation
// charges it (§7 evaluates exactly this behaviour).
type ClosestStrategy struct{}

var _ Strategy = ClosestStrategy{}

// Name implements Strategy.
func (ClosestStrategy) Name() string { return "closest" }

// ClientNodeLoads implements Strategy.
func (ClosestStrategy) ClientNodeLoads(e *Eval, v int, mode LoadMode) []float64 {
	loads := make([]float64, e.Topo.Size())
	elems, _ := e.Sys.ClosestQuorum(e.elementNetCosts(v))
	switch mode {
	case LoadDedup:
		for _, w := range e.F.QuorumNodes(elems) {
			loads[w] = 1
		}
	default:
		for _, u := range elems {
			loads[e.F.Node(u)]++
		}
	}
	return loads
}

// ExpectedMax implements Strategy.
func (ClosestStrategy) ExpectedMax(e *Eval, v int, elemCost []float64) float64 {
	elems, _ := e.Sys.ClosestQuorum(e.elementNetCosts(v))
	maxC := math.Inf(-1)
	for _, u := range elems {
		if elemCost[u] > maxC {
			maxC = elemCost[u]
		}
	}
	return maxC
}

// BalancedStrategy is the uniform access strategy: every client samples a
// quorum uniformly at random, dispersing demand evenly (the paper's
// "balanced" strategy).
type BalancedStrategy struct{}

var _ Strategy = BalancedStrategy{}

// Name implements Strategy.
func (BalancedStrategy) Name() string { return "balanced" }

// ClientNodeLoads implements Strategy.
func (BalancedStrategy) ClientNodeLoads(e *Eval, v int, mode LoadMode) []float64 {
	loads := make([]float64, e.Topo.Size())
	switch mode {
	case LoadDedup:
		for _, w := range e.F.Support() {
			loads[w] = e.Sys.UniformTouchProbability(e.F.ElementsOn(w))
		}
	default:
		per := e.Sys.UniformElementLoad()
		for u := 0; u < e.F.UniverseSize(); u++ {
			loads[e.F.Node(u)] += per
		}
	}
	return loads
}

// ExpectedMax implements Strategy.
func (BalancedStrategy) ExpectedMax(e *Eval, v int, elemCost []float64) float64 {
	return e.Sys.ExpectedMaxUniform(elemCost)
}

// ExplicitStrategy holds an explicit per-client distribution over the
// enumerated quorums of the system — the output of the access-strategy LP
// (4.3)–(4.6). Probs[v][i] is p_v(Q_i) for client index v (aligned with
// Eval.Clients ordering: Probs[k] corresponds to the k-th client).
type ExplicitStrategy struct {
	// Probs[k][i] is the probability that the k-th client accesses
	// quorum i.
	Probs [][]float64
	// Label names the strategy in reports (defaults to "explicit").
	Label string
}

var _ Strategy = (*ExplicitStrategy)(nil)

// Name implements Strategy.
func (s *ExplicitStrategy) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "explicit"
}

// Validate checks dimensions against the evaluation and that each row is
// a distribution.
func (s *ExplicitStrategy) Validate(e *Eval) error {
	if !e.Sys.Enumerable() {
		return fmt.Errorf("core: explicit strategy requires an enumerable system, got %s", e.Sys.Name())
	}
	if len(s.Probs) != len(e.Clients) {
		return fmt.Errorf("core: %d strategy rows for %d clients", len(s.Probs), len(e.Clients))
	}
	m := e.Sys.NumQuorums()
	for k, row := range s.Probs {
		if len(row) != m {
			return fmt.Errorf("core: client %d has %d quorum probabilities, want %d", k, len(row), m)
		}
		sum := 0.0
		for i, p := range row {
			if p < -1e-9 || math.IsNaN(p) {
				return fmt.Errorf("core: client %d has invalid probability %v for quorum %d", k, p, i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: client %d probabilities sum to %v, want 1", k, sum)
		}
	}
	return nil
}

// ClientNodeLoads implements Strategy.
func (s *ExplicitStrategy) ClientNodeLoads(e *Eval, v int, mode LoadMode) []float64 {
	k := e.clientIndex(v)
	loads := make([]float64, e.Topo.Size())
	for i, p := range s.Probs[k] {
		if p <= 0 {
			continue
		}
		elems := e.quorumElems(i)
		switch mode {
		case LoadDedup:
			for _, w := range e.F.QuorumNodes(elems) {
				loads[w] += p
			}
		default:
			for _, u := range elems {
				loads[e.F.Node(u)] += p
			}
		}
	}
	return loads
}

// ExpectedMax implements Strategy.
func (s *ExplicitStrategy) ExpectedMax(e *Eval, v int, elemCost []float64) float64 {
	k := e.clientIndex(v)
	sum := 0.0
	for i, p := range s.Probs[k] {
		if p <= 0 {
			continue
		}
		maxC := math.Inf(-1)
		for _, u := range e.quorumElems(i) {
			if elemCost[u] > maxC {
				maxC = elemCost[u]
			}
		}
		sum += p * maxC
	}
	return sum
}
