package core

import (
	"fmt"
	"math"

	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Eval evaluates a (topology, system, placement) triple under the paper's
// response-time model. The zero value is unusable; construct with NewEval
// and adjust fields before calling measures.
type Eval struct {
	Topo *topology.Topology
	Sys  quorum.System
	F    Placement
	// Alpha converts per-node load into milliseconds of processing delay:
	// alpha = op_srv_time × client_demand (§7). Zero evaluates pure
	// network delay (§6).
	Alpha float64
	// Clients lists the client nodes. The paper takes V itself as the
	// client set; NewEval defaults to all nodes.
	Clients []int
	// Mode selects the load model; NewEval defaults to LoadMultiplicity
	// (the paper's definition).
	Mode LoadMode

	clientPos map[int]int // node id → index into Clients
	weights   []float64   // per-client demand weights; nil = uniform
	quorums   [][]int     // memoized enumerated quorums (enumerable systems)
}

// OpServiceTimeMS is the per-request server processing time the paper
// measured for a Q/U write on its hardware, used to derive Alpha.
const OpServiceTimeMS = 0.007

// AlphaForDemand returns alpha = OpServiceTimeMS × clientDemand (§7).
func AlphaForDemand(clientDemand float64) float64 {
	return OpServiceTimeMS * clientDemand
}

// NewEval validates the triple and returns an evaluator with all nodes as
// clients, the multiplicity load model, and the given alpha.
func NewEval(topo *topology.Topology, sys quorum.System, f Placement, alpha float64) (*Eval, error) {
	if topo == nil || sys == nil {
		return nil, fmt.Errorf("core: nil topology or system")
	}
	if f.UniverseSize() != sys.UniverseSize() {
		return nil, fmt.Errorf("core: placement covers %d elements but %s has %d",
			f.UniverseSize(), sys.Name(), sys.UniverseSize())
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("core: invalid alpha %v", alpha)
	}
	clients := make([]int, topo.Size())
	for i := range clients {
		clients[i] = i
	}
	e := &Eval{
		Topo:    topo,
		Sys:     sys,
		F:       f,
		Alpha:   alpha,
		Clients: clients,
		Mode:    LoadMultiplicity,
	}
	e.reindex()
	return e, nil
}

// SetClients restricts the client set (e.g. the ten client sites of the
// §3 experiment).
func (e *Eval) SetClients(clients []int) error {
	if len(clients) == 0 {
		return fmt.Errorf("core: empty client set")
	}
	for _, v := range clients {
		if v < 0 || v >= e.Topo.Size() {
			return fmt.Errorf("core: client node %d out of range", v)
		}
	}
	e.Clients = append([]int(nil), clients...)
	e.reindex()
	return nil
}

func (e *Eval) reindex() {
	e.clientPos = make(map[int]int, len(e.Clients))
	for k, v := range e.Clients {
		e.clientPos[v] = k
	}
	e.weights = nil // weights are positional; invalidate on client change
}

// SetClientWeights assigns relative demand weights to the clients
// (positionally aligned with Clients). The paper weighs every client
// equally; weights generalize the model to heterogeneous demand: load and
// response-time averages become weighted means, and the strategy LP
// scales each client's contribution accordingly. Weights must be positive
// and are normalized internally; call after SetClients.
func (e *Eval) SetClientWeights(weights []float64) error {
	if len(weights) != len(e.Clients) {
		return fmt.Errorf("core: %d weights for %d clients", len(weights), len(e.Clients))
	}
	total := 0.0
	for k, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: invalid weight %v for client %d", w, k)
		}
		total += w
	}
	norm := make([]float64, len(weights))
	for k, w := range weights {
		norm[k] = w / total
	}
	e.weights = norm
	return nil
}

// ClientWeight returns client v's normalized demand share.
func (e *Eval) ClientWeight(v int) float64 {
	k := e.clientIndex(v)
	if e.weights == nil {
		return 1 / float64(len(e.Clients))
	}
	return e.weights[k]
}

func (e *Eval) clientIndex(v int) int {
	k, ok := e.clientPos[v]
	if !ok {
		panic(fmt.Sprintf("core: node %d is not a client", v))
	}
	return k
}

// Prewarm eagerly populates the evaluator's lazy caches (the memoized
// quorum enumeration). Measures on an Eval are read-only afterwards, so
// a prewarmed evaluator may be shared by concurrent readers — parallel
// capacity sweeps call this before fanning out.
func (e *Eval) Prewarm() {
	if !e.Sys.Enumerable() {
		return
	}
	for i := 0; i < e.Sys.NumQuorums(); i++ {
		e.quorumElems(i)
	}
}

// quorumElems memoizes enumerated quorums.
func (e *Eval) quorumElems(i int) []int {
	if e.quorums == nil {
		e.quorums = make([][]int, e.Sys.NumQuorums())
	}
	if e.quorums[i] == nil {
		e.quorums[i] = e.Sys.Quorum(i)
	}
	return e.quorums[i]
}

// elementNetCosts returns d(v, f(u)) for every element u.
func (e *Eval) elementNetCosts(v int) []float64 {
	row := e.Topo.RTTRow(v)
	out := make([]float64, e.F.UniverseSize())
	for u := range out {
		out[u] = row[e.F.Node(u)]
	}
	return out
}

// NodeLoads returns load_f(w): the (weighted) average over clients of
// load_{v,f}(w), the quantity multiplied by alpha in (4.1).
func (e *Eval) NodeLoads(s Strategy) []float64 {
	loads := make([]float64, e.Topo.Size())
	for _, v := range e.Clients {
		wv := e.ClientWeight(v)
		for w, l := range s.ClientNodeLoads(e, v, e.Mode) {
			loads[w] += wv * l
		}
	}
	return loads
}

// MaxNodeLoad returns the largest per-node load under the strategy.
func (e *Eval) MaxNodeLoad(s Strategy) float64 {
	maxL := 0.0
	for _, l := range e.NodeLoads(s) {
		if l > maxL {
			maxL = l
		}
	}
	return maxL
}

// AvgResponseTime returns the paper's objective avg_v Δ_f(v) with the
// evaluator's alpha.
func (e *Eval) AvgResponseTime(s Strategy) float64 {
	return e.avgExpectedMax(s, e.Alpha)
}

// AvgNetworkDelay returns the same average with alpha = 0: the pure
// network-delay measure of §6.
func (e *Eval) AvgNetworkDelay(s Strategy) float64 {
	return e.avgExpectedMax(s, 0)
}

// ClientResponseTime returns Δ_f(v) for one client.
func (e *Eval) ClientResponseTime(s Strategy, v int) float64 {
	loads := e.NodeLoads(s)
	return s.ExpectedMax(e, v, e.elementCosts(v, loads, e.Alpha))
}

func (e *Eval) avgExpectedMax(s Strategy, alpha float64) float64 {
	var loads []float64
	if alpha != 0 {
		loads = e.NodeLoads(s)
	}
	sum := 0.0
	for _, v := range e.Clients {
		sum += e.ClientWeight(v) * s.ExpectedMax(e, v, e.elementCosts(v, loads, alpha))
	}
	return sum
}

// elementCosts returns d(v, f(u)) + alpha·load(f(u)) per element.
func (e *Eval) elementCosts(v int, loads []float64, alpha float64) []float64 {
	row := e.Topo.RTTRow(v)
	out := make([]float64, e.F.UniverseSize())
	for u := range out {
		w := e.F.Node(u)
		c := row[w]
		if alpha != 0 {
			c += alpha * loads[w]
		}
		out[u] = c
	}
	return out
}

// Profile bundles the measures reported in the paper's figures.
type Profile struct {
	Strategy    string
	AvgResponse float64 // avg_v Δ_f(v) with alpha
	AvgNetDelay float64 // same with alpha = 0
	MaxNodeLoad float64
}

// Profile computes all measures for one strategy.
func (e *Eval) Profile(s Strategy) Profile {
	return Profile{
		Strategy:    s.Name(),
		AvgResponse: e.AvgResponseTime(s),
		AvgNetDelay: e.AvgNetworkDelay(s),
		MaxNodeLoad: e.MaxNodeLoad(s),
	}
}
