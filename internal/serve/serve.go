// Package serve exposes a deploy.Manager over HTTP — the transport of
// the quorumd daemon. Three endpoints:
//
//	GET  /v1/plan    — the current snapshot. ETag is the plan version
//	                   ("v<n>"); If-None-Match returns 304 when nothing
//	                   changed. With ?after=<version>, the request
//	                   long-polls until a newer snapshot is published or
//	                   ?timeout (capped by Options.MaxWait) elapses, in
//	                   which case the current snapshot is served.
//	POST /v1/deltas  — {"deltas": [...]} applies a batch of typed deltas
//	                   (see deploy.Delta) and returns the resulting
//	                   version and provenance.
//	GET  /v1/history — the retained re-plan history with provenance,
//	                   newest first (?limit=n).
//
// Reads are wait-free: the handler serves the atomically published
// snapshot, so a slow re-plan never blocks readers.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// Options tunes the server.
type Options struct {
	// MaxWait caps a long-poll's ?timeout (default 30s).
	MaxWait time.Duration
}

func (o Options) maxWait() time.Duration {
	if o.MaxWait <= 0 {
		return 30 * time.Second
	}
	return o.MaxWait
}

// Server serves one deployment.
type Server struct {
	m    *deploy.Manager
	opts Options
}

// New wraps a manager.
func New(m *deploy.Manager, opts Options) *Server {
	return &Server{m: m, opts: opts}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/deltas", s.handleDeltas)
	mux.HandleFunc("/v1/history", s.handleHistory)
	return mux
}

// SiteJSON describes one site of the served plan.
type SiteJSON struct {
	Name     string  `json:"name"`
	Region   string  `json:"region,omitempty"`
	Capacity float64 `json:"capacity"`
	Weight   float64 `json:"weight,omitempty"`
}

// ProvenanceJSON serializes a snapshot's provenance plus the manager's
// adaptation decision.
type ProvenanceJSON struct {
	Summary    string   `json:"summary"`
	Recomputed []string `json:"recomputed"`
	Deltas     []string `json:"deltas,omitempty"`
	Pinned     bool     `json:"pinned,omitempty"`
	Decision   string   `json:"decision"`
}

// PlanJSON is the GET /v1/plan payload.
type PlanJSON struct {
	Version      uint64         `json:"version"`
	Topology     string         `json:"topology"`
	System       string         `json:"system"`
	Sites        []SiteJSON     `json:"sites"`
	ElementSites []string       `json:"element_sites"`
	Strategy     string         `json:"strategy"`
	Demand       float64        `json:"demand"`
	ResponseMS   float64        `json:"response_ms"`
	NetDelayMS   float64        `json:"net_delay_ms"`
	MaxLoad      float64        `json:"max_load"`
	Provenance   ProvenanceJSON `json:"provenance"`
}

// HistoryEntryJSON is one GET /v1/history element.
type HistoryEntryJSON struct {
	Version    uint64         `json:"version"`
	ResponseMS float64        `json:"response_ms"`
	NetDelayMS float64        `json:"net_delay_ms"`
	Applied    int            `json:"applied_deltas"`
	Provenance ProvenanceJSON `json:"provenance"`
}

// DeltasRequest is the POST /v1/deltas payload.
type DeltasRequest struct {
	Deltas []deploy.Delta `json:"deltas"`
}

// DeltasResponse is the POST /v1/deltas reply.
type DeltasResponse struct {
	Version    uint64         `json:"version"`
	ResponseMS float64        `json:"response_ms"`
	Provenance ProvenanceJSON `json:"provenance"`
}

func provenanceJSON(e *deploy.Entry) ProvenanceJSON {
	p := e.Snapshot.Provenance
	names := e.Snapshot.RecomputedNames()
	if names == nil {
		names = []string{}
	}
	return ProvenanceJSON{
		Summary:    p.Summary(),
		Recomputed: names,
		Deltas:     p.Deltas,
		Pinned:     p.Pinned,
		Decision:   e.Decision,
	}
}

func planJSON(e *deploy.Entry) *PlanJSON {
	snap := e.Snapshot
	topo := snap.Topology
	sites := make([]SiteJSON, topo.Size())
	for i := range sites {
		site := topo.Site(i)
		sites[i] = SiteJSON{Name: site.Name, Region: site.Region, Capacity: topo.Capacity(i)}
		if snap.Weights != nil {
			sites[i].Weight = snap.Weights[i]
		}
	}
	elems := make([]string, snap.Placement.UniverseSize())
	for u := range elems {
		elems[u] = topo.Site(snap.Placement.Node(u)).Name
	}
	return &PlanJSON{
		Version:      snap.Version,
		Topology:     topo.Name(),
		System:       snap.System.Name(),
		Sites:        sites,
		ElementSites: elems,
		Strategy:     snap.Strategy.Name(),
		Demand:       snap.Demand,
		ResponseMS:   snap.Response,
		NetDelayMS:   snap.NetDelay,
		MaxLoad:      snap.MaxLoad,
		Provenance:   provenanceJSON(e),
	}
}

func etag(v uint64) string { return fmt.Sprintf("\"v%d\"", v) }

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entry := s.m.Current()

	// Long-poll: ?after=<version> (optionally with ?timeout=<duration>)
	// blocks until a newer version is published. If-None-Match with the
	// current ETag behaves like after=<current>.
	after, hasAfter, err := parseAfter(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !hasAfter && r.Header.Get("If-None-Match") == etag(entry.Snapshot.Version) {
		if r.URL.Query().Get("timeout") == "" {
			w.Header().Set("ETag", etag(entry.Snapshot.Version))
			w.WriteHeader(http.StatusNotModified)
			return
		}
		after, hasAfter = entry.Snapshot.Version, true
	}
	if hasAfter && entry.Snapshot.Version <= after {
		timeout := s.opts.maxWait()
		if tstr := r.URL.Query().Get("timeout"); tstr != "" {
			d, err := time.ParseDuration(tstr)
			if err != nil || d <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid timeout %q", tstr))
				return
			}
			if d < timeout {
				timeout = d
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		entry, _ = s.m.Wait(ctx, after) // timeout serves the current plan
	}

	w.Header().Set("ETag", etag(entry.Snapshot.Version))
	writeJSON(w, http.StatusOK, planJSON(entry))
}

func parseAfter(r *http.Request) (uint64, bool, error) {
	str := r.URL.Query().Get("after")
	if str == "" {
		return 0, false, nil
	}
	v, err := strconv.ParseUint(str, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("invalid after version %q", str)
	}
	return v, true, nil
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req DeltasRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding deltas: "+err.Error())
		return
	}
	if len(req.Deltas) == 0 {
		httpError(w, http.StatusBadRequest, "empty delta batch")
		return
	}
	entry, err := s.m.Apply(req.Deltas)
	if err != nil {
		// A malformed batch is rejected untouched (400); a batch that
		// applied but cannot be planned (e.g. LP infeasible under the
		// new capacities) is a conflict with the deployment's state —
		// the previous snapshot keeps being served.
		status := http.StatusBadRequest
		if errors.Is(err, deploy.ErrReplan) {
			status = http.StatusConflict
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &DeltasResponse{
		Version:    entry.Snapshot.Version,
		ResponseMS: entry.Snapshot.Response,
		Provenance: provenanceJSON(entry),
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := s.m.History()
	limit := len(entries)
	if lstr := r.URL.Query().Get("limit"); lstr != "" {
		l, err := strconv.Atoi(lstr)
		if err != nil || l <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid limit %q", lstr))
			return
		}
		if l < limit {
			limit = l
		}
	}
	out := make([]HistoryEntryJSON, 0, limit)
	for i := len(entries) - 1; i >= len(entries)-limit; i-- {
		e := entries[i]
		out = append(out, HistoryEntryJSON{
			Version:    e.Snapshot.Version,
			ResponseMS: e.Snapshot.Response,
			NetDelayMS: e.Snapshot.NetDelay,
			Applied:    e.Applied,
			Provenance: provenanceJSON(e),
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"snapshots": out})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
