// Package serve exposes deployments over HTTP — the transport of the
// quorumd daemon. A Registry multiplexes any number of named
// deployments ("tenants") in one process:
//
//	GET  /v1/deployments                     tenant roster
//	GET  /v1/deployments/<name>/plan         current snapshot (ETag = version)
//	POST /v1/deployments/<name>/deltas       apply a typed delta batch
//	GET  /v1/deployments/<name>/history      retained re-plans, newest first
//
// plus the legacy single-tenant routes, which alias the registry's
// default deployment byte-for-byte:
//
//	GET  /v1/plan    — the current snapshot. ETag is the plan version
//	                   ("v<n>"); If-None-Match returns 304 when nothing
//	                   changed. With ?after=<version>, the request
//	                   long-polls until a newer snapshot is published or
//	                   ?timeout (capped by Options.MaxWait; 0 means
//	                   "don't wait") elapses, in which case the current
//	                   snapshot is served.
//	POST /v1/deltas  — {"deltas": [...]} applies a batch of typed deltas
//	                   (see deploy.Delta) and returns the resulting
//	                   version and provenance.
//	GET  /v1/history — the retained re-plan history with provenance,
//	                   newest first (?limit=n).
//
// Reads are wait-free and allocation-free on the hot path: each
// publish is JSON-encoded once into immutable bytes (body + ETag), and
// every reader serves those cached bytes; 304s never touch the
// snapshot. Long-polls park on the tenant's epoch channel — one
// channel close per publish wakes every watcher — with deadlines on a
// shared coarse timer wheel instead of per-request timers, and a
// configurable watcher cap (503 + Retry-After beyond it).
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// DefaultMaxWatchers caps concurrently parked long-polls per tenant
// when Options.MaxWatchers is zero.
const DefaultMaxWatchers = 1 << 20

// DefaultMaxApplyQueue caps delta batches queued behind the manager's
// serialized apply loop when Options.MaxApplyQueue is zero. Re-plans
// take milliseconds, so a queue this deep means ingestion is outrunning
// planning and posters should back off and re-coalesce.
const DefaultMaxApplyQueue = 64

// Options tunes the server.
type Options struct {
	// MaxWait caps a long-poll's ?timeout (default 30s).
	MaxWait time.Duration
	// MaxWatchers caps concurrently parked long-polls per tenant
	// (default DefaultMaxWatchers); beyond it polls are rejected with
	// 503 + Retry-After instead of growing the parked set without bound.
	MaxWatchers int
	// MaxApplyQueue caps delta batches in flight (applying or queued on
	// the manager's apply loop) per tenant (default DefaultMaxApplyQueue);
	// beyond it POST deltas is rejected with 429 + Retry-After instead of
	// queueing unboundedly behind an in-flight re-plan.
	MaxApplyQueue int
}

func (o Options) maxWait() time.Duration {
	if o.MaxWait <= 0 {
		return 30 * time.Second
	}
	return o.MaxWait
}

func (o Options) maxWatchers() int {
	if o.MaxWatchers <= 0 {
		return DefaultMaxWatchers
	}
	return o.MaxWatchers
}

func (o Options) maxApplyQueue() int {
	if o.MaxApplyQueue <= 0 {
		return DefaultMaxApplyQueue
	}
	return o.MaxApplyQueue
}

// Server serves one deployment: the single-tenant view, kept for the
// quorumd default mode and embedders that need exactly one deployment.
// It is a Registry of one.
type Server struct {
	t *Tenant
}

// New wraps a manager.
func New(m *deploy.Manager, opts Options) *Server {
	return &Server{t: newTenant(DefaultTenant, m, opts, newWheel(0))}
}

// Tenant returns the server's single tenant (for stats and in-process
// reads).
func (s *Server) Tenant() *Tenant { return s.t }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.t.handlePlan)
	mux.HandleFunc("/v1/deltas", s.t.handleDeltas)
	mux.HandleFunc("/v1/history", s.t.handleHistory)
	return mux
}

// SiteJSON describes one site of the served plan.
type SiteJSON struct {
	Name     string  `json:"name"`
	Region   string  `json:"region,omitempty"`
	Capacity float64 `json:"capacity"`
	Weight   float64 `json:"weight,omitempty"`
}

// ProvenanceJSON serializes a snapshot's provenance plus the manager's
// adaptation decision.
type ProvenanceJSON struct {
	Summary    string   `json:"summary"`
	Recomputed []string `json:"recomputed"`
	Deltas     []string `json:"deltas,omitempty"`
	Pinned     bool     `json:"pinned,omitempty"`
	Decision   string   `json:"decision"`
}

// PlanJSON is the GET plan payload.
type PlanJSON struct {
	Version      uint64         `json:"version"`
	Topology     string         `json:"topology"`
	System       string         `json:"system"`
	Sites        []SiteJSON     `json:"sites"`
	ElementSites []string       `json:"element_sites"`
	Strategy     string         `json:"strategy"`
	Demand       float64        `json:"demand"`
	ResponseMS   float64        `json:"response_ms"`
	NetDelayMS   float64        `json:"net_delay_ms"`
	MaxLoad      float64        `json:"max_load"`
	Provenance   ProvenanceJSON `json:"provenance"`
}

// HistoryEntryJSON is one GET history element.
type HistoryEntryJSON struct {
	Version    uint64         `json:"version"`
	ResponseMS float64        `json:"response_ms"`
	NetDelayMS float64        `json:"net_delay_ms"`
	Applied    int            `json:"applied_deltas"`
	Provenance ProvenanceJSON `json:"provenance"`
}

// DeltasRequest is the POST deltas payload.
type DeltasRequest struct {
	Deltas []deploy.Delta `json:"deltas"`
}

// DeltasResponse is the POST deltas reply.
type DeltasResponse struct {
	Version    uint64         `json:"version"`
	ResponseMS float64        `json:"response_ms"`
	Provenance ProvenanceJSON `json:"provenance"`
}

func provenanceJSON(e *deploy.Entry) ProvenanceJSON {
	p := e.Snapshot.Provenance
	names := e.Snapshot.RecomputedNames()
	if names == nil {
		names = []string{}
	}
	return ProvenanceJSON{
		Summary:    p.Summary(),
		Recomputed: names,
		Deltas:     p.Deltas,
		Pinned:     p.Pinned,
		Decision:   e.Decision,
	}
}

func planJSON(e *deploy.Entry) *PlanJSON {
	snap := e.Snapshot
	topo := snap.Topology
	sites := make([]SiteJSON, topo.Size())
	for i := range sites {
		site := topo.Site(i)
		sites[i] = SiteJSON{Name: site.Name, Region: site.Region, Capacity: topo.Capacity(i)}
		if snap.Weights != nil {
			sites[i].Weight = snap.Weights[i]
		}
	}
	elems := make([]string, snap.Placement.UniverseSize())
	for u := range elems {
		elems[u] = topo.Site(snap.Placement.Node(u)).Name
	}
	return &PlanJSON{
		Version:      snap.Version,
		Topology:     topo.Name(),
		System:       snap.System.Name(),
		Sites:        sites,
		ElementSites: elems,
		Strategy:     snap.Strategy.Name(),
		Demand:       snap.Demand,
		ResponseMS:   snap.Response,
		NetDelayMS:   snap.NetDelay,
		MaxLoad:      snap.MaxLoad,
		Provenance:   provenanceJSON(e),
	}
}

func etag(v uint64) string { return fmt.Sprintf("\"v%d\"", v) }

func parseAfter(r *http.Request) (uint64, bool, error) {
	str := r.URL.Query().Get("after")
	if str == "" {
		return 0, false, nil
	}
	v, err := strconv.ParseUint(str, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("invalid after version %q", str)
	}
	return v, true, nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
