package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// Encoded is one snapshot's wire form, built once per publish and
// served to every reader from immutable bytes: the plan-read hot path
// is a pointer load, an ETag string compare, and a Write — no
// per-request marshalling, no snapshot traversal.
type Encoded struct {
	// Version is the snapshot version the bytes encode.
	Version uint64
	// ETag is the strong validator ("v<n>", quoted) of Body.
	ETag string
	// Body is the exact GET plan response body. It must not be mutated.
	Body []byte
}

// Tenant is one named deployment inside the serving plane: a
// deploy.Manager plus the per-publish encoding cache, the long-poll
// park machinery, and observability counters. Tenants are created by a
// Registry (or by New for the single-tenant Server) and share the
// process: the planner pool, the LP workspaces, and the server's
// coarse deadline wheel.
type Tenant struct {
	name  string
	m     *deploy.Manager
	opts  Options
	wheel *wheel

	// enc caches the current snapshot's encoding; encMu serializes the
	// one encode a new publish needs (losers of the race reuse it).
	enc   atomic.Pointer[Encoded]
	encMu sync.Mutex

	// parked counts watchers currently parked on the epoch channel; the
	// Options.MaxWatchers cap rejects parks beyond it with 503.
	parked atomic.Int64
	// inflight counts POST deltas requests between decode and apply
	// completion; the Options.MaxApplyQueue cap rejects posts beyond it
	// with 429 instead of queueing unboundedly on the apply loop.
	inflight atomic.Int64

	reads        atomic.Uint64
	notModified  atomic.Uint64
	parks        atomic.Uint64
	wakeups      atomic.Uint64
	rejected     atomic.Uint64
	throttled    atomic.Uint64
	deltaBatches atomic.Uint64
	deltaErrors  atomic.Uint64
	replanNS     atomic.Int64
	lastReplanNS atomic.Int64
	// lastDeltaNS is the wall-clock unix nanos of the last accepted delta
	// batch — the freshness of the newest probe input this tenant has
	// seen (0 until the first batch).
	lastDeltaNS atomic.Int64
}

func newTenant(name string, m *deploy.Manager, opts Options, w *wheel) *Tenant {
	return &Tenant{name: name, m: m, opts: opts, wheel: w}
}

// Name returns the tenant's deployment name.
func (t *Tenant) Name() string { return t.name }

// Manager returns the tenant's deployment manager.
func (t *Tenant) Manager() *deploy.Manager { return t.m }

// Notify returns the tenant's epoch channel, closed at the next
// publish (see deploy.Manager.Notify for the park protocol).
func (t *Tenant) Notify() <-chan struct{} { return t.m.Notify() }

// Encoded returns the cached encoding of the current snapshot,
// encoding it first if this is the first read since its publish. The
// returned value is immutable and shared by every concurrent reader.
func (t *Tenant) Encoded() *Encoded {
	cur := t.m.Current()
	if e := t.enc.Load(); e != nil && e.Version == cur.Snapshot.Version {
		return e
	}
	t.encMu.Lock()
	defer t.encMu.Unlock()
	cur = t.m.Current() // a newer publish may have landed; encode the latest
	if e := t.enc.Load(); e != nil && e.Version == cur.Snapshot.Version {
		return e
	}
	// MarshalIndent + '\n' reproduces the json.Encoder(SetIndent) bytes
	// the per-request path produced, so cached responses are
	// byte-identical to the pre-cache serving layer.
	body, err := json.MarshalIndent(planJSON(cur), "", "  ")
	if err != nil {
		// A snapshot is plain data; marshalling it cannot fail. Encode
		// the error rather than panic in the serving path.
		body = []byte(`{"error":"encoding snapshot: ` + err.Error() + `"}`)
	}
	e := &Encoded{
		Version: cur.Snapshot.Version,
		ETag:    etag(cur.Snapshot.Version),
		Body:    append(body, '\n'),
	}
	t.enc.Store(e)
	return e
}

// EncodeBaseline marshals the current snapshot from scratch, exactly
// as the pre-cache serving layer did per request. It exists so
// quorumbench -bench-serve can measure the allocation cost the Encoded
// cache removes; the HTTP handlers never call it.
func (t *Tenant) EncodeBaseline() []byte {
	body, err := json.MarshalIndent(planJSON(t.m.Current()), "", "  ")
	if err != nil {
		body = []byte(`{"error":"encoding snapshot: ` + err.Error() + `"}`)
	}
	return append(body, '\n')
}

// TenantStats is one tenant's observability counters, as exposed on
// the quorumd debug listener's /debug/vars.
type TenantStats struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// Reads counts plan bodies served (200s); NotModified counts 304s.
	Reads       uint64 `json:"reads"`
	NotModified uint64 `json:"not_modified"`
	// Parks counts long-polls that parked; Wakeups counts parked polls
	// woken by a publish (the rest timed out or disconnected). Parked is
	// the current parked-watcher count, Rejected the watcher-cap 503s.
	Parks    uint64 `json:"parks"`
	Wakeups  uint64 `json:"wakeups"`
	Parked   int64  `json:"parked"`
	Rejected uint64 `json:"rejected"`
	// DeltaBatches counts accepted POST /deltas batches, DeltaErrors the
	// rejected ones; ReplanLastMS/ReplanTotalMS time the Apply calls.
	DeltaBatches  uint64  `json:"delta_batches"`
	DeltaErrors   uint64  `json:"delta_errors"`
	ReplanLastMS  float64 `json:"replan_last_ms"`
	ReplanTotalMS float64 `json:"replan_total_ms"`
	// ApplyQueue is the current number of delta posts in flight on the
	// apply loop; Throttled counts the 429s the MaxApplyQueue cap issued.
	ApplyQueue int64  `json:"apply_queue"`
	Throttled  uint64 `json:"throttled"`
	// DeltaAgeMS is the staleness bound signal: milliseconds since the
	// newest accepted delta batch (-1 until telemetry first arrives). A
	// deployment whose probes die shows this growing without bound.
	DeltaAgeMS float64 `json:"delta_age_ms"`
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() TenantStats {
	age := -1.0
	if last := t.lastDeltaNS.Load(); last > 0 {
		age = float64(time.Now().UnixNano()-last) / 1e6
	}
	return TenantStats{
		Name:          t.name,
		Version:       t.m.Current().Snapshot.Version,
		Reads:         t.reads.Load(),
		NotModified:   t.notModified.Load(),
		Parks:         t.parks.Load(),
		Wakeups:       t.wakeups.Load(),
		Parked:        t.parked.Load(),
		Rejected:      t.rejected.Load(),
		DeltaBatches:  t.deltaBatches.Load(),
		DeltaErrors:   t.deltaErrors.Load(),
		ReplanLastMS:  float64(t.lastReplanNS.Load()) / 1e6,
		ReplanTotalMS: float64(t.replanNS.Load()) / 1e6,
		ApplyQueue:    t.inflight.Load(),
		Throttled:     t.throttled.Load(),
		DeltaAgeMS:    age,
	}
}

// parseTimeout parses the ?timeout query parameter. A present zero
// duration means "do not wait" — a poll whose ?after is already
// current returns the current snapshot immediately.
func parseTimeout(r *http.Request) (d time.Duration, has bool, err error) {
	tstr := r.URL.Query().Get("timeout")
	if tstr == "" {
		return 0, false, nil
	}
	d, perr := time.ParseDuration(tstr)
	if perr != nil || d < 0 {
		return 0, false, errBadTimeout(tstr)
	}
	return d, true, nil
}

func errBadTimeout(tstr string) error {
	return &badRequestError{msg: "invalid timeout " + strconv.Quote(tstr)}
}

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func (t *Tenant) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	enc := t.Encoded()

	after, hasAfter, err := parseAfter(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout, hasTimeout, err := parseTimeout(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !hasAfter && r.Header.Get("If-None-Match") == enc.ETag {
		if !hasTimeout {
			t.notModified.Add(1)
			w.Header().Set("ETag", enc.ETag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// If-None-Match with an explicit timeout long-polls like
		// after=<current>.
		after, hasAfter = enc.Version, true
	}
	if hasAfter && enc.Version <= after && (!hasTimeout || timeout > 0) {
		// Long-poll: park on the tenant's epoch channel. One channel
		// close per publish wakes every parked watcher; the deadline is
		// a shared coarse-wheel bucket, not a per-request timer.
		if !hasTimeout || timeout > t.opts.maxWait() {
			timeout = t.opts.maxWait()
		}
		if n := t.parked.Add(1); n > int64(t.opts.maxWatchers()) {
			t.parked.Add(-1)
			t.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "watcher cap reached")
			return
		}
		t.parks.Add(1)
		deadline := t.wheel.after(timeout)
		woken := false
	park:
		for {
			ch := t.Notify()
			if e := t.Encoded(); e.Version > after {
				enc, woken = e, true
				break
			}
			select {
			case <-ch: // re-check; a closed channel is a no-cost wakeup
			case <-deadline:
				enc = t.Encoded() // timeout serves the current plan
				break park
			case <-r.Context().Done():
				t.parked.Add(-1)
				return // client gone; nothing to write
			}
		}
		t.parked.Add(-1)
		if woken {
			t.wakeups.Add(1)
		}
	}

	t.reads.Add(1)
	w.Header().Set("ETag", enc.ETag)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(enc.Body)
}

func (t *Tenant) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Backpressure before decode: the apply loop is serialized, so posts
	// beyond the queue bound would stack up behind an in-flight re-plan.
	// Same inc-then-check pattern as the watcher cap — the transient
	// overshoot by concurrent rejected requests is harmless.
	if n := t.inflight.Add(1); n > int64(t.opts.maxApplyQueue()) {
		t.inflight.Add(-1)
		t.throttled.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "apply queue full")
		return
	}
	defer t.inflight.Add(-1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req DeltasRequest
	if err := dec.Decode(&req); err != nil {
		t.deltaErrors.Add(1)
		httpError(w, http.StatusBadRequest, "decoding deltas: "+err.Error())
		return
	}
	if len(req.Deltas) == 0 {
		t.deltaErrors.Add(1)
		httpError(w, http.StatusBadRequest, "empty delta batch")
		return
	}
	start := time.Now()
	entry, err := t.m.Apply(req.Deltas)
	d := time.Since(start)
	t.replanNS.Add(int64(d))
	t.lastReplanNS.Store(int64(d))
	if err != nil {
		t.deltaErrors.Add(1)
		// A malformed batch is rejected untouched (400); a batch that
		// applied but cannot be planned (e.g. LP infeasible under the
		// new capacities) is a conflict with the deployment's state —
		// the previous snapshot keeps being served. An applied batch is
		// fresh telemetry either way, so the staleness clock resets.
		status := http.StatusBadRequest
		if errors.Is(err, deploy.ErrReplan) {
			status = http.StatusConflict
			t.lastDeltaNS.Store(time.Now().UnixNano())
		}
		httpError(w, status, err.Error())
		return
	}
	t.deltaBatches.Add(1)
	t.lastDeltaNS.Store(time.Now().UnixNano())
	writeJSON(w, http.StatusOK, &DeltasResponse{
		Version:    entry.Snapshot.Version,
		ResponseMS: entry.Snapshot.Response,
		Provenance: provenanceJSON(entry),
	})
}

func (t *Tenant) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := t.m.History()
	limit := len(entries)
	if lstr := r.URL.Query().Get("limit"); lstr != "" {
		l, err := strconv.Atoi(lstr)
		if err != nil || l <= 0 {
			httpError(w, http.StatusBadRequest, "invalid limit "+strconv.Quote(lstr))
			return
		}
		if l < limit {
			limit = l
		}
	}
	out := make([]HistoryEntryJSON, 0, limit)
	for i := len(entries) - 1; i >= len(entries)-limit; i-- {
		e := entries[i]
		out = append(out, HistoryEntryJSON{
			Version:    e.Snapshot.Version,
			ResponseMS: e.Snapshot.Response,
			NetDelayMS: e.Snapshot.NetDelay,
			Applied:    e.Applied,
			Provenance: provenanceJSON(e),
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"snapshots": out})
}
