package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// testManager builds a small deterministic deployment whose topology
// name carries the tenant label, so cross-tenant bleed is detectable
// in any served payload.
func testManager(t *testing.T, label string, seed int64) *deploy.Manager {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "tenant-" + label,
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 5, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 5, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
		},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.New(topo, plan.Config{
		System:   plan.SystemSpec{Family: "grid", Param: 3},
		Strategy: plan.StratClosest,
		Demand:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := deploy.New(p, deploy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestRegistryTenantIsolation: two tenants behind one registry serve
// independent plans, deltas route to the named tenant only, and the
// roster lists both.
func TestRegistryTenantIsolation(t *testing.T) {
	reg := NewRegistry(Options{MaxWait: 5 * time.Second})
	if _, err := reg.Open("alpha", testManager(t, "alpha", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("beta", testManager(t, "beta", 11)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	var alpha, beta PlanJSON
	for name, out := range map[string]*PlanJSON{"alpha": &alpha, "beta": &beta} {
		status, body, _ := get(t, ts.URL+"/v1/deployments/"+name+"/plan")
		if status != http.StatusOK {
			t.Fatalf("GET %s plan: status %d", name, status)
		}
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatal(err)
		}
	}
	if alpha.Topology != "tenant-alpha" || beta.Topology != "tenant-beta" {
		t.Fatalf("tenant bleed: alpha=%q beta=%q", alpha.Topology, beta.Topology)
	}

	// A delta posted to beta advances beta only.
	resp, err := http.Post(ts.URL+"/v1/deployments/beta/deltas", "application/json",
		strings.NewReader(`{"deltas":[{"kind":"demand","value":16000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta delta status %d", resp.StatusCode)
	}
	var a2, b2 PlanJSON
	_, body, _ := get(t, ts.URL+"/v1/deployments/alpha/plan")
	if err := json.Unmarshal(body, &a2); err != nil {
		t.Fatal(err)
	}
	_, body, _ = get(t, ts.URL+"/v1/deployments/beta/plan")
	if err := json.Unmarshal(body, &b2); err != nil {
		t.Fatal(err)
	}
	if a2.Version != 1 || b2.Version != 2 {
		t.Fatalf("after beta delta: alpha v%d (want 1), beta v%d (want 2)", a2.Version, b2.Version)
	}
	if b2.Demand != 16000 || a2.Demand != 8000 {
		t.Fatalf("demand bleed: alpha %v beta %v", a2.Demand, b2.Demand)
	}

	// Roster: both tenants, alpha (opened first) is the default.
	var roster struct {
		Deployments []DeploymentJSON `json:"deployments"`
	}
	_, body, _ = get(t, ts.URL+"/v1/deployments")
	if err := json.Unmarshal(body, &roster); err != nil {
		t.Fatal(err)
	}
	if len(roster.Deployments) != 2 ||
		roster.Deployments[0].Name != "alpha" || !roster.Deployments[0].Default ||
		roster.Deployments[1].Name != "beta" || roster.Deployments[1].Default {
		t.Fatalf("roster %+v", roster.Deployments)
	}

	// Unknown tenants and routes 404.
	if status, _, _ := get(t, ts.URL+"/v1/deployments/nosuch/plan"); status != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d", status)
	}
	if status, _, _ := get(t, ts.URL+"/v1/deployments/alpha/frobnicate"); status != http.StatusNotFound {
		t.Fatalf("unknown route: status %d", status)
	}
}

// TestRegistryLegacyAliasByteIdentical: the legacy single-tenant
// routes serve the default deployment byte-for-byte — against both the
// per-tenant route and a standalone single-tenant Server over the same
// manager.
func TestRegistryLegacyAliasByteIdentical(t *testing.T) {
	m := testManager(t, "alias", 7)
	reg := NewRegistry(Options{})
	if _, err := reg.Open(DefaultTenant, m); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("other", testManager(t, "other", 11)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	single := httptest.NewServer(New(m, Options{}).Handler())
	defer single.Close()

	if _, err := m.Apply([]deploy.Delta{{Kind: deploy.KindDemand, Value: 12000}}); err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{"/v1/plan", "/v1/history"} {
		_, legacy, lh := get(t, ts.URL+route)
		_, tenant, th := get(t, ts.URL+"/v1/deployments/"+DefaultTenant+strings.TrimPrefix(route, "/v1"))
		_, std, sh := get(t, single.URL+route)
		if !bytes.Equal(legacy, tenant) {
			t.Fatalf("%s: legacy route differs from tenant route:\n%s\n---\n%s", route, legacy, tenant)
		}
		if !bytes.Equal(legacy, std) {
			t.Fatalf("%s: registry legacy route differs from single-tenant Server:\n%s\n---\n%s", route, legacy, std)
		}
		if lh.Get("ETag") != th.Get("ETag") || lh.Get("ETag") != sh.Get("ETag") {
			t.Fatalf("%s: ETag mismatch %q / %q / %q", route, lh.Get("ETag"), th.Get("ETag"), sh.Get("ETag"))
		}
	}
}

// TestRegistryOpenRejects: invalid names, duplicates, nil managers.
func TestRegistryOpenRejects(t *testing.T) {
	reg := NewRegistry(Options{})
	m := testManager(t, "a", 7)
	for _, name := range []string{"", "a/b", ".hidden", "no spaces", strings.Repeat("x", 65)} {
		if _, err := reg.Open(name, m); err == nil {
			t.Errorf("Open(%q) accepted", name)
		}
	}
	if _, err := reg.Open("ok-name.v2", m); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open("ok-name.v2", testManager(t, "b", 8)); err == nil {
		t.Error("duplicate Open accepted")
	}
	if _, err := reg.Open("nil", nil); err == nil {
		t.Error("nil manager accepted")
	}
	if err := reg.SetDefault("nosuch"); err == nil {
		t.Error("SetDefault of unknown tenant accepted")
	}
}

// TestServeTimeoutZero is the long-poll edge regression: ?after ≥
// current with ?timeout=0 returns the current snapshot immediately
// with its ETag instead of waiting (or 400ing, as the pre-fix server
// did).
func TestServeTimeoutZero(t *testing.T) {
	ts, _ := testServer(t, deploy.Config{})
	start := time.Now()
	status, body, hdr := get(t, ts.URL+"/v1/plan?after=99&timeout=0")
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout=0 waited %v", elapsed)
	}
	var p PlanJSON
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Version != 1 || hdr.Get("ETag") != `"v1"` {
		t.Fatalf("timeout=0 served v%d etag %q, want current v1", p.Version, hdr.Get("ETag"))
	}
	// "0s" spelling too.
	if status, _, _ := get(t, ts.URL+"/v1/plan?after=99&timeout=0s"); status != http.StatusOK {
		t.Fatalf("timeout=0s: status %d", status)
	}
	// Negative stays rejected.
	if status, _, _ := get(t, ts.URL+"/v1/plan?after=99&timeout=-1s"); status != http.StatusBadRequest {
		t.Fatalf("timeout=-1s: status %d, want 400", status)
	}
}

// TestServeWatcherCap: long-polls beyond Options.MaxWatchers are
// rejected with 503 + Retry-After instead of parking.
func TestServeWatcherCap(t *testing.T) {
	m := testManager(t, "cap", 7)
	reg := NewRegistry(Options{MaxWait: 10 * time.Second, MaxWatchers: 2})
	tenant, err := reg.Open("capped", m)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	var parked sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		parked.Add(1)
		go func() {
			defer parked.Done()
			resp, err := http.Get(ts.URL + "/v1/deployments/capped/plan?after=1&timeout=8s")
			if err == nil {
				resp.Body.Close()
			}
			<-release
		}()
	}
	// Wait until both watchers are parked.
	for i := 0; i < 200 && tenant.Stats().Parked < 2; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if got := tenant.Stats().Parked; got != 2 {
		t.Fatalf("parked %d, want 2", got)
	}
	status, _, hdr := get(t, ts.URL+"/v1/deployments/capped/plan?after=1&timeout=8s")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-cap poll: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("over-cap poll: no Retry-After header")
	}
	if tenant.Stats().Rejected != 1 {
		t.Fatalf("rejected count %d, want 1", tenant.Stats().Rejected)
	}
	// Un-park the watchers and make sure capacity frees up.
	if _, err := m.Apply([]deploy.Delta{{Kind: deploy.KindDemand, Value: 9000}}); err != nil {
		t.Fatal(err)
	}
	close(release)
	parked.Wait()
	if status, _, _ := get(t, ts.URL+"/v1/deployments/capped/plan?after=2&timeout=0"); status != http.StatusOK {
		t.Fatalf("post-release poll: status %d", status)
	}
}

// TestTenantStats: the per-tenant counters move with traffic.
func TestTenantStats(t *testing.T) {
	m := testManager(t, "stats", 7)
	reg := NewRegistry(Options{})
	tenant, err := reg.Open("stats", m)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	get(t, ts.URL+"/v1/deployments/stats/plan")
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/deployments/stats/plan", nil)
	req.Header.Set("If-None-Match", `"v1"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("INM status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/deployments/stats/deltas", "application/json",
		strings.NewReader(`{"deltas":[{"kind":"demand","value":16000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/deployments/stats/deltas", "application/json",
		strings.NewReader(`{"deltas":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	s := tenant.Stats()
	if s.Name != "stats" || s.Version != 2 {
		t.Fatalf("stats identity: %+v", s)
	}
	if s.Reads != 1 || s.NotModified != 1 {
		t.Fatalf("read counters: reads %d, 304s %d", s.Reads, s.NotModified)
	}
	if s.DeltaBatches != 1 || s.DeltaErrors != 1 {
		t.Fatalf("delta counters: batches %d, errors %d", s.DeltaBatches, s.DeltaErrors)
	}
	if s.ReplanLastMS <= 0 || s.ReplanTotalMS < s.ReplanLastMS {
		t.Fatalf("replan timings: last %v total %v", s.ReplanLastMS, s.ReplanTotalMS)
	}
	all := reg.Stats()
	if len(all) != 1 || all["stats"].Reads != 1 {
		t.Fatalf("registry stats: %+v", all)
	}
}

// TestRegistryConcurrentWatchers is the race-mode fan-out test: N
// tenants × M concurrent long-polling watchers with interleaved delta
// writers. Asserts per-tenant versions are strictly monotonic at every
// watcher, snapshots never bleed across tenants, and every parked
// watcher is woken by the publish it awaits (no lost wakeups).
func TestRegistryConcurrentWatchers(t *testing.T) {
	const (
		tenants  = 3
		watchers = 8
		rounds   = 4
	)
	reg := NewRegistry(Options{MaxWait: 30 * time.Second})
	names := make([]string, tenants)
	mgrs := make([]*deploy.Manager, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		mgrs[i] = testManager(t, names[i], int64(7+i))
		if _, err := reg.Open(names[i], mgrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	// Per tenant and round: park all M watchers (observed via the parked
	// counter), publish exactly once, and require every watcher to come
	// back with exactly that publish's version — proving one channel
	// close woke them all, with no lost wakeups and no version skew.
	var wg sync.WaitGroup
	var woken atomic.Int64
	errc := make(chan error, tenants*(watchers+1)*rounds)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := reg.Tenant(names[ti])
			demand := 8000.0
			for r := 0; r < rounds; r++ {
				after := uint64(r + 1) // current version this round
				var rwg sync.WaitGroup
				for wi := 0; wi < watchers; wi++ {
					rwg.Add(1)
					go func() {
						defer rwg.Done()
						url := fmt.Sprintf("%s/v1/deployments/%s/plan?after=%d&timeout=25s", ts.URL, names[ti], after)
						resp, err := http.Get(url)
						if err != nil {
							errc <- err
							return
						}
						var p PlanJSON
						err = json.NewDecoder(resp.Body).Decode(&p)
						resp.Body.Close()
						if err != nil {
							errc <- err
							return
						}
						if p.Topology != "tenant-"+names[ti] {
							errc <- fmt.Errorf("tenant %s served topology %q", names[ti], p.Topology)
							return
						}
						if p.Version != after+1 {
							errc <- fmt.Errorf("tenant %s: watcher woke at v%d, want v%d (one publish)", names[ti], p.Version, after+1)
							return
						}
						woken.Add(1)
					}()
				}
				deadline := time.Now().Add(20 * time.Second)
				for tenant.Stats().Parked < watchers {
					if time.Now().After(deadline) {
						errc <- fmt.Errorf("tenant %s round %d: only %d/%d watchers parked", names[ti], r, tenant.Stats().Parked, watchers)
						break
					}
					time.Sleep(time.Millisecond)
				}
				demand += 1000
				if _, err := mgrs[ti].Apply([]deploy.Delta{{Kind: deploy.KindDemand, Value: demand}}); err != nil {
					errc <- err
				}
				rwg.Wait()
			}
		}(ti)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if woken.Load() != tenants*watchers*rounds {
		t.Fatalf("completed %d watcher rounds, want %d", woken.Load(), tenants*watchers*rounds)
	}
	// Every tenant's history is strictly monotonic from v1.
	for ti, m := range mgrs {
		hist := m.History()
		for i, e := range hist {
			if e.Snapshot.Version != uint64(i+1) {
				t.Fatalf("tenant %d history[%d] = v%d", ti, i, e.Snapshot.Version)
			}
		}
	}
}
