package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func testServer(t *testing.T, cfg deploy.Config) (*httptest.Server, *deploy.Manager) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "serve-test-15",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 5, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 5, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 5, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.New(topo, plan.Config{
		System:   plan.SystemSpec{Family: "grid", Param: 3},
		Strategy: plan.StratLP,
		Demand:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := deploy.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(m, Options{MaxWait: 5 * time.Second}).Handler())
	t.Cleanup(ts.Close)
	return ts, m
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp
}

func postDeltas(t *testing.T, url, body string) (*DeltasResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/deltas", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out DeltasResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

// TestServeAcceptance is the ISSUE's serving-layer criterion: a
// demand-only delta posted to quorumd's API advances the plan version
// through an eval-only incremental re-plan, with the provenance saying
// so.
func TestServeAcceptance(t *testing.T) {
	ts, _ := testServer(t, deploy.Config{MoveCost: 5})

	var p1 PlanJSON
	resp := getJSON(t, ts.URL+"/v1/plan", &p1)
	if p1.Version != 1 {
		t.Fatalf("initial version %d, want 1", p1.Version)
	}
	if resp.Header.Get("ETag") != `"v1"` {
		t.Fatalf("ETag %q, want \"v1\"", resp.Header.Get("ETag"))
	}
	if p1.Provenance.Summary != "cold" || p1.Provenance.Decision != "initial" {
		t.Fatalf("initial provenance %+v", p1.Provenance)
	}
	if len(p1.Sites) != 15 || len(p1.ElementSites) != 9 {
		t.Fatalf("plan shape: %d sites, %d element sites", len(p1.Sites), len(p1.ElementSites))
	}

	dr, status := postDeltas(t, ts.URL, `{"deltas":[{"kind":"demand","value":16000}]}`)
	if status != http.StatusOK {
		t.Fatalf("delta post status %d", status)
	}
	if dr.Version != 2 {
		t.Fatalf("post-delta version %d, want 2", dr.Version)
	}
	if dr.Provenance.Summary != "eval-only" {
		t.Fatalf("demand delta provenance %q, want eval-only (recomputed %v)",
			dr.Provenance.Summary, dr.Provenance.Recomputed)
	}

	var p2 PlanJSON
	getJSON(t, ts.URL+"/v1/plan", &p2)
	if p2.Version != 2 || p2.Demand != 16000 {
		t.Fatalf("served plan version %d demand %v", p2.Version, p2.Demand)
	}
}

// TestServeNotModified: If-None-Match with the current version returns
// 304 without a body.
func TestServeNotModified(t *testing.T) {
	ts, _ := testServer(t, deploy.Config{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/plan", nil)
	req.Header.Set("If-None-Match", `"v1"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
}

// TestServeLongPoll: a GET with after=<current> blocks until the next
// delta publishes, then returns the new snapshot; a timed-out poll
// serves the current one.
func TestServeLongPoll(t *testing.T) {
	ts, m := testServer(t, deploy.Config{})

	type res struct {
		p   PlanJSON
		err error
	}
	done := make(chan res, 1)
	go func() {
		var p PlanJSON
		resp, err := http.Get(ts.URL + "/v1/plan?after=1&timeout=10s")
		if err != nil {
			done <- res{err: err}
			return
		}
		defer resp.Body.Close()
		done <- res{err: json.NewDecoder(resp.Body).Decode(&p), p: p}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := m.Apply([]deploy.Delta{{Kind: deploy.KindDemand, Value: 12000}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.p.Version != 2 {
			t.Fatalf("long-poll returned version %d, want 2", r.p.Version)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned")
	}

	// Timed-out poll: serves the current version.
	var p PlanJSON
	start := time.Now()
	getJSON(t, ts.URL+"/v1/plan?after=2&timeout=50ms", &p)
	if p.Version != 2 {
		t.Fatalf("timed-out poll served version %d, want 2", p.Version)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timed-out poll returned early")
	}
}

// TestServeBadRequests covers the API's rejection paths.
func TestServeBadRequests(t *testing.T) {
	ts, _ := testServer(t, deploy.Config{})
	cases := []string{
		`{`,
		`{"deltas":[]}`,
		`{"deltas":[{"kind":"frobnicate"}]}`,
		`{"deltas":[{"kind":"demand","value":-1}]}`,
		`{"deltas":[{"kind":"capacity","site":"no-such-site","value":1}]}`,
		`{"deltas":[{"kind":"demand","value":1,"unknown_field":true}]}`,
	}
	for _, body := range cases {
		if _, status := postDeltas(t, ts.URL, body); status != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/plan?after=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad after: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/deltas")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/deltas: status %d, want 405", resp.StatusCode)
	}
}

// journaledServer is the quorumd -journal composition: an identically
// re-buildable planner (Reproducible on, exactly as quorumd forces it
// when -journal is set), a manager Recovered from the journal path, and
// the HTTP layer on top.
func journaledServer(t *testing.T, path string) (*httptest.Server, *deploy.Manager, int) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "serve-test-15",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 5, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 5, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 5, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.New(topo, plan.Config{
		System:       plan.SystemSpec{Family: "grid", Param: 3},
		Strategy:     plan.StratLP,
		Demand:       8000,
		Reproducible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, replayed, err := deploy.Recover(p, deploy.Config{MoveCost: 5}, path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(m, Options{MaxWait: 5 * time.Second}).Handler())
	t.Cleanup(ts.Close)
	return ts, m, replayed
}

func getRaw(t *testing.T, url string) ([]byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header
}

// TestServeJournalRestartIdenticalHistory is the quorumd crash/restart
// acceptance test: a journaled daemon takes deltas over HTTP, is killed
// (server closed, journal never cleanly shut down — every batch record
// was already fsynced), and a daemon restarted with the same flags and
// journal replays to a byte-identical /v1/history and the same /v1/plan
// ETag before taking new deltas.
func TestServeJournalRestartIdenticalHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.journal")
	ts1, _, replayed := journaledServer(t, path)
	if replayed != 0 {
		t.Fatalf("fresh journal replayed %d batches", replayed)
	}

	var p1 PlanJSON
	getJSON(t, ts1.URL+"/v1/plan", &p1)
	site := p1.Sites[0].Name
	for _, body := range []string{
		`{"deltas":[{"kind":"demand","value":16000}]}`,
		`{"deltas":[{"kind":"weights","weights":{"` + site + `":3}}]}`,
		`{"deltas":[{"kind":"capacity","site":"` + site + `","value":2.5}]}`,
	} {
		if _, status := postDeltas(t, ts1.URL, body); status != http.StatusOK {
			t.Fatalf("POST %s: status %d", body, status)
		}
	}
	wantHistory, _ := getRaw(t, ts1.URL+"/v1/history")
	wantPlan, wantHdr := getRaw(t, ts1.URL+"/v1/plan")
	ts1.Close() // the kill: no CloseJournal, no drain

	ts2, _, replayed := journaledServer(t, path)
	if replayed != 3 {
		t.Fatalf("restart replayed %d batches, want 3", replayed)
	}
	gotHistory, _ := getRaw(t, ts2.URL+"/v1/history")
	if !bytes.Equal(gotHistory, wantHistory) {
		t.Fatalf("restarted /v1/history differs:\npre-kill:  %s\nrestarted: %s", wantHistory, gotHistory)
	}
	gotPlan, gotHdr := getRaw(t, ts2.URL+"/v1/plan")
	if !bytes.Equal(gotPlan, wantPlan) {
		t.Fatal("restarted /v1/plan differs from pre-kill snapshot")
	}
	if gotHdr.Get("ETag") != wantHdr.Get("ETag") || gotHdr.Get("ETag") == "" {
		t.Fatalf("restarted ETag %q, want pre-kill %q", gotHdr.Get("ETag"), wantHdr.Get("ETag"))
	}

	// The restarted daemon is live: a new delta advances the version.
	dr, status := postDeltas(t, ts2.URL, `{"deltas":[{"kind":"demand","value":20000}]}`)
	if status != http.StatusOK {
		t.Fatalf("post-restart delta status %d", status)
	}
	var cur PlanJSON
	if err := json.Unmarshal(wantPlan, &cur); err != nil {
		t.Fatal(err)
	}
	if dr.Version <= cur.Version {
		t.Fatalf("post-restart version %d did not advance past %d", dr.Version, cur.Version)
	}
}

// TestServeHistory: the history endpoint lists re-plans newest first
// with their provenance and decisions.
func TestServeHistory(t *testing.T) {
	ts, m := testServer(t, deploy.Config{})
	if _, err := m.Apply([]deploy.Delta{{Kind: deploy.KindDemand, Value: 12000}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply([]deploy.Delta{{Kind: deploy.KindUniformCapacity, Value: 0.9}}); err != nil {
		t.Fatal(err)
	}
	var h struct {
		Snapshots []HistoryEntryJSON `json:"snapshots"`
	}
	getJSON(t, ts.URL+"/v1/history", &h)
	if len(h.Snapshots) != 3 {
		t.Fatalf("history has %d entries, want 3", len(h.Snapshots))
	}
	if h.Snapshots[0].Version != 3 || h.Snapshots[2].Version != 1 {
		t.Fatalf("history order: %d..%d, want newest first", h.Snapshots[0].Version, h.Snapshots[len(h.Snapshots)-1].Version)
	}
	if h.Snapshots[1].Provenance.Summary != "eval-only" {
		t.Errorf("demand entry summary %q", h.Snapshots[1].Provenance.Summary)
	}

	getJSON(t, ts.URL+"/v1/history?limit=1", &h)
	if len(h.Snapshots) != 1 || h.Snapshots[0].Version != 3 {
		t.Fatalf("limited history: %+v", h.Snapshots)
	}
}
