package serve

import (
	"sync"
	"time"
)

// wheelGranularity is the deadline rounding of the shared long-poll
// wheel: every poll expiring inside the same bucket shares one timer
// and one channel close, so the live-timer count is bounded by
// MaxWait/granularity instead of the watcher count. Deadlines round
// UP, so a poll never times out before its requested duration.
const wheelGranularity = 100 * time.Millisecond

// wheel is the shared coarse-deadline source: after(d) returns a
// channel closed once d (rounded up to the bucket boundary) has
// elapsed. All tenants of a server share one wheel.
type wheel struct {
	gran time.Duration

	mu      sync.Mutex
	buckets map[int64]chan struct{}
}

func newWheel(gran time.Duration) *wheel {
	if gran <= 0 {
		gran = wheelGranularity
	}
	return &wheel{gran: gran, buckets: make(map[int64]chan struct{})}
}

// closedCh is the degenerate d <= 0 deadline: already expired.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// after returns a channel closed once at least d has elapsed. Polls
// landing in the same gran-wide bucket share the channel (and its one
// timer goroutine).
func (w *wheel) after(d time.Duration) <-chan struct{} {
	if d <= 0 {
		return closedCh
	}
	deadline := time.Now().Add(d).UnixNano()
	gran := int64(w.gran)
	slot := (deadline + gran - 1) / gran // ceil: never early

	w.mu.Lock()
	defer w.mu.Unlock()
	if ch, ok := w.buckets[slot]; ok {
		return ch
	}
	ch := make(chan struct{})
	w.buckets[slot] = ch
	go func() {
		time.Sleep(time.Duration(slot*gran - time.Now().UnixNano()))
		close(ch)
		w.mu.Lock()
		delete(w.buckets, slot)
		w.mu.Unlock()
	}()
	return ch
}
