package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// DefaultTenant is the deployment name the legacy single-tenant routes
// (/v1/plan, /v1/deltas, /v1/history) alias when no explicit default
// was chosen.
const DefaultTenant = "default"

// Registry multiplexes named deployments in one process: each tenant
// owns its deploy.Manager (and optional journal), while the HTTP
// listener, the coarse long-poll wheel, and the planner worker pools
// are shared. Tenants are served at /v1/deployments/<name>/{plan,
// deltas,history}; the legacy single-tenant routes alias the default
// tenant (the first one opened, unless SetDefault picks another) with
// byte-identical responses.
type Registry struct {
	opts  Options
	wheel *wheel

	mu      sync.RWMutex
	tenants map[string]*Tenant
	def     *Tenant
}

// NewRegistry builds an empty registry; add deployments with Open.
func NewRegistry(opts Options) *Registry {
	return &Registry{
		opts:    opts,
		wheel:   newWheel(0),
		tenants: make(map[string]*Tenant),
	}
}

// ValidTenantName reports whether name can name a deployment: 1–64
// characters of letters, digits, '-', '_' or '.', not starting with a
// dot (no path tricks in /v1/deployments/<name>/...).
func ValidTenantName(name string) bool {
	if name == "" || len(name) > 64 || name[0] == '.' {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Open registers a named deployment and returns its tenant. The first
// tenant opened becomes the default (legacy-route alias) until
// SetDefault overrides it. The manager must not be registered twice.
func (r *Registry) Open(name string, m *deploy.Manager) (*Tenant, error) {
	if !ValidTenantName(name) {
		return nil, fmt.Errorf("serve: invalid deployment name %q (want 1-64 of [a-zA-Z0-9._-], not starting with '.')", name)
	}
	if m == nil {
		return nil, fmt.Errorf("serve: deployment %q: nil manager", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; ok {
		return nil, fmt.Errorf("serve: deployment %q already registered", name)
	}
	t := newTenant(name, m, r.opts, r.wheel)
	r.tenants[name] = t
	if r.def == nil {
		r.def = t
	}
	return t, nil
}

// SetDefault picks the tenant the legacy single-tenant routes alias.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("serve: no deployment named %q", name)
	}
	r.def = t
	return nil
}

// Tenant returns the named tenant, or nil.
func (r *Registry) Tenant(name string) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[name]
}

// Default returns the default tenant, or nil for an empty registry.
func (r *Registry) Default() *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Names lists the registered deployment names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats snapshots every tenant's counters, keyed by name.
func (r *Registry) Stats() map[string]TenantStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]TenantStats, len(r.tenants))
	for name, t := range r.tenants {
		out[name] = t.Stats()
	}
	return out
}

// DeploymentJSON is one GET /v1/deployments roster element.
type DeploymentJSON struct {
	Name       string  `json:"name"`
	Version    uint64  `json:"version"`
	Topology   string  `json:"topology"`
	System     string  `json:"system"`
	ResponseMS float64 `json:"response_ms"`
	Default    bool    `json:"default,omitempty"`
}

func (r *Registry) handleList(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	r.mu.RLock()
	def := r.def
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.RUnlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	out := make([]DeploymentJSON, len(tenants))
	for i, t := range tenants {
		snap := t.m.Current().Snapshot
		out[i] = DeploymentJSON{
			Name:       t.name,
			Version:    snap.Version,
			Topology:   snap.Topology.Name(),
			System:     snap.System.Name(),
			ResponseMS: snap.Response,
			Default:    t == def,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"deployments": out})
}

// handleTenant dispatches /v1/deployments/<name>/<route>.
func (r *Registry) handleTenant(w http.ResponseWriter, req *http.Request) {
	rest := strings.TrimPrefix(req.URL.Path, "/v1/deployments/")
	name, route, ok := strings.Cut(rest, "/")
	if !ok || name == "" {
		httpError(w, http.StatusNotFound, "want /v1/deployments/<name>/{plan,deltas,history}")
		return
	}
	t := r.Tenant(name)
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no deployment named %q", name))
		return
	}
	switch route {
	case "plan":
		t.handlePlan(w, req)
	case "deltas":
		t.handleDeltas(w, req)
	case "history":
		t.handleHistory(w, req)
	default:
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown route %q (want plan, deltas, or history)", route))
	}
}

// defaultOr404 wraps a tenant handler, serving it on the default
// tenant (legacy alias) or 404ing on an empty registry.
func (r *Registry) defaultOr404(h func(*Tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		t := r.Default()
		if t == nil {
			httpError(w, http.StatusNotFound, "no deployments registered")
			return
		}
		h(t, w, req)
	}
}

// Handler returns the HTTP routes: the per-tenant tree plus the legacy
// single-tenant aliases of the default deployment.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/deployments", r.handleList)
	mux.HandleFunc("/v1/deployments/", r.handleTenant)
	mux.Handle("/v1/plan", r.defaultOr404((*Tenant).handlePlan))
	mux.Handle("/v1/deltas", r.defaultOr404((*Tenant).handleDeltas))
	mux.Handle("/v1/history", r.defaultOr404((*Tenant).handleHistory))
	return mux
}
