package serve

import (
	"testing"
	"time"
)

// TestWheelNeverEarly: deadlines round up to the bucket boundary, so a
// wait never expires before its requested duration.
func TestWheelNeverEarly(t *testing.T) {
	w := newWheel(20 * time.Millisecond)
	start := time.Now()
	ch := w.after(30 * time.Millisecond)
	<-ch
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("wheel fired after %v, want >= 30ms", elapsed)
	}
}

// TestWheelSharesBuckets: waits landing in the same bucket share one
// channel (one timer for any number of watchers).
func TestWheelSharesBuckets(t *testing.T) {
	w := newWheel(time.Hour) // one giant bucket: everything shares
	ch1 := w.after(time.Minute)
	ch2 := w.after(2 * time.Minute)
	if ch1 != ch2 {
		t.Fatal("same-bucket waits got distinct channels")
	}
	w.mu.Lock()
	n := len(w.buckets)
	w.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d live buckets, want 1", n)
	}
}

// TestWheelZero: a non-positive wait is already expired.
func TestWheelZero(t *testing.T) {
	w := newWheel(0)
	select {
	case <-w.after(0):
	default:
		t.Fatal("after(0) not immediately expired")
	}
	select {
	case <-w.after(-time.Second):
	default:
		t.Fatal("after(-1s) not immediately expired")
	}
}

// TestWheelBucketCleanup: fired buckets are deleted, so the map stays
// bounded by the in-flight horizon.
func TestWheelBucketCleanup(t *testing.T) {
	w := newWheel(5 * time.Millisecond)
	<-w.after(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		n := len(w.buckets)
		w.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d buckets still live after firing", n)
		}
		time.Sleep(time.Millisecond)
	}
}
