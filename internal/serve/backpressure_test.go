package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func backpressureServer(t *testing.T, opts Options) (*Server, *deploy.Manager) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "bp-test-9",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 3, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 3, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 3, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.New(topo, plan.Config{
		System:   plan.SystemSpec{Family: "grid", Param: 2},
		Strategy: plan.StratLP,
		Demand:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := deploy.New(p, deploy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(m, opts), m
}

// TestDeltasBackpressure is the 429 satellite: POST /v1/deltas beyond
// the apply-queue bound is rejected with 429 + Retry-After instead of
// queueing unboundedly behind an in-flight re-plan, and the tenant
// counts the throttle.
func TestDeltasBackpressure(t *testing.T) {
	srv, m := backpressureServer(t, Options{MaxApplyQueue: 2})
	tn := srv.Tenant()

	post := func() int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, "/v1/deltas",
			strings.NewReader(`{"deltas":[{"kind":"demand","value":9000}]}`))
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		tn.handleDeltas(rec, req)
		return rec.Code
	}

	// Saturate the queue as concurrent in-flight posts would, then post:
	// the bound rejects without touching the manager.
	before := m.Current().Snapshot.Version
	tn.inflight.Store(2)
	rec := func() *httptest.ResponseRecorder {
		req, err := http.NewRequest(http.MethodPost, "/v1/deltas",
			strings.NewReader(`{"deltas":[{"kind":"demand","value":9000}]}`))
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRecorder()
		tn.handleDeltas(r, req)
		return r
	}()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d with saturated queue, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", got)
	}
	if got := m.Current().Snapshot.Version; got != before {
		t.Fatalf("throttled post still applied: version %d", got)
	}
	if got := tn.Stats().Throttled; got != 1 {
		t.Fatalf("throttled counter %d, want 1", got)
	}
	if got := tn.inflight.Load(); got != 2 {
		t.Fatalf("rejected post leaked inflight: %d, want 2", got)
	}

	// Drain the queue; the same post now lands.
	tn.inflight.Store(0)
	if code := post(); code != http.StatusOK {
		t.Fatalf("status %d with drained queue, want 200", code)
	}
	if got := tn.inflight.Load(); got != 0 {
		t.Fatalf("accepted post leaked inflight: %d, want 0", got)
	}
	if got := m.Current().Snapshot.Version; got != before+1 {
		t.Fatalf("version %d after accepted post, want %d", got, before+1)
	}
}

// TestDeltaStaleness: the tenant's delta_age_ms gauge starts undefined
// (-1), resets on every accepted batch, and then grows — the signal a
// staleness monitor alarms on when probes die.
func TestDeltaStaleness(t *testing.T) {
	srv, _ := backpressureServer(t, Options{})
	tn := srv.Tenant()

	if got := tn.Stats().DeltaAgeMS; got != -1 {
		t.Fatalf("initial delta age %v, want -1", got)
	}
	req, err := http.NewRequest(http.MethodPost, "/v1/deltas",
		strings.NewReader(`{"deltas":[{"kind":"demand","value":12000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	tn.handleDeltas(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post status %d", rec.Code)
	}
	age := tn.Stats().DeltaAgeMS
	if age < 0 || age > 60_000 {
		t.Fatalf("delta age after post = %v ms, want small and non-negative", age)
	}
	time.Sleep(10 * time.Millisecond)
	if later := tn.Stats().DeltaAgeMS; later <= age {
		t.Fatalf("delta age did not grow: %v then %v", age, later)
	}

	// A malformed batch must not reset the staleness clock.
	stale := tn.lastDeltaNS.Load()
	req, err = http.NewRequest(http.MethodPost, "/v1/deltas", strings.NewReader(`{"deltas":[{"kind":"bogus"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	tn.handleDeltas(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus post status %d", rec.Code)
	}
	if tn.lastDeltaNS.Load() != stale {
		t.Fatal("rejected batch reset the staleness clock")
	}
}
