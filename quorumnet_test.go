package quorumnet_test

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	quorumnet "github.com/quorumnet/quorumnet"
)

// TestPublicAPIPipeline exercises the whole public surface end to end:
// topology → system → placement → evaluation → strategy LP → best
// capacity, the way a downstream user would.
func TestPublicAPIPipeline(t *testing.T) {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	if topo.Size() != 50 {
		t.Fatalf("topology size = %d", topo.Size())
	}

	sys, err := quorumnet.NewGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsOneToOne() {
		t.Error("OneToOne returned a many-to-one placement")
	}

	e, err := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(16000))
	if err != nil {
		t.Fatal(err)
	}
	closest := e.AvgResponseTime(quorumnet.Closest)
	balanced := e.AvgResponseTime(quorumnet.Balanced)
	if closest <= 0 || balanced <= 0 {
		t.Fatalf("non-positive response times: %v, %v", closest, balanced)
	}

	values := quorumnet.SweepValues(sys.OptimalLoad(), 5)
	points, err := quorumnet.UniformCapacitySweep(e, values)
	if err != nil {
		t.Fatal(err)
	}
	best, err := quorumnet.BestSweepPoint(points)
	if err != nil {
		t.Fatal(err)
	}
	// The LP with tuned capacity must beat or match both fixed strategies.
	if best.Response > math.Min(closest, balanced)+1e-6 {
		t.Errorf("LP-optimized %v worse than min(closest %v, balanced %v)",
			best.Response, closest, balanced)
	}
}

func TestPublicAPITopologyRoundTrip(t *testing.T) {
	topo := quorumnet.Daxlist161(3)
	var buf bytes.Buffer
	if err := quorumnet.SaveTopology(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := quorumnet.LoadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != topo.Size() || back.Name() != topo.Name() {
		t.Errorf("round trip mismatch: %d/%s", back.Size(), back.Name())
	}
}

func TestPublicAPIProtocol(t *testing.T) {
	topo := quorumnet.PlanetLab50(2)
	sys, err := quorumnet.QUMajority(1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := quorumnet.RunProtocol(quorumnet.ProtocolConfig{
		Topo:          topo,
		ServerSites:   f.Targets(),
		QuorumSize:    sys.QuorumSize(),
		ClientSites:   []int{0, 10, 20},
		ServiceTimeMS: 1,
		DurationMS:    3000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.AvgResponseMS < m.AvgNetDelayMS {
		t.Errorf("implausible metrics: %+v", m)
	}
}

func TestPublicAPIIterate(t *testing.T) {
	topo := quorumnet.PlanetLab50(4)
	sys, err := quorumnet.NewGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := quorumnet.Iterate(topo, sys, quorumnet.IterateConfig{
		MaxIterations: 2,
		Candidates:    []int{0, 10, 20, 30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || res.Strategy == nil {
		t.Error("iterate returned empty result")
	}
}

// TestPublicAPIPlanner drives the staged planner through the deltas the
// replan example uses and checks the incremental contract: a demand-only
// delta re-runs a single stage.
func TestPublicAPIPlanner(t *testing.T) {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	p, err := quorumnet.NewPlanner(topo, quorumnet.PlannerConfig{
		System:   quorumnet.SystemSpec{Family: "grid", Param: 3},
		Strategy: quorumnet.StratLP,
		Demand:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Provenance.Cold() || res.LP == nil || res.Response <= 0 || res.Version != 1 {
		t.Fatalf("implausible cold plan: %+v", res)
	}
	if err := p.SetDemand(16000); err != nil {
		t.Fatal(err)
	}
	res, err = p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Provenance.EvalOnly() {
		t.Fatalf("demand delta recomputed %v, want [eval]", res.RecomputedNames())
	}
	if err := p.RemoveSite(p.Site(0).Name); err != nil {
		t.Fatal(err)
	}
	res, err = p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology.Size() != 49 {
		t.Fatalf("site removal left %d sites", res.Topology.Size())
	}
}

// TestPublicAPIScenario runs a library scenario and a hand-built eval
// spec through the engine.
func TestPublicAPIScenario(t *testing.T) {
	if len(quorumnet.ScenarioLibrary()) != 10 {
		t.Errorf("ScenarioLibrary() = %d scenarios, want 10", len(quorumnet.ScenarioLibrary()))
	}
	spec := quorumnet.Scenario{
		Name:       "api-smoke",
		Kind:       "eval",
		Topology:   quorumnet.ScenarioTopology{Source: "planetlab50"},
		Systems:    []quorumnet.ScenarioSystemAxis{{Family: "grid", Params: []int{3}}},
		Demands:    []float64{0},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
	}
	tb, err := quorumnet.RunScenario(&spec, quorumnet.ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("expected one row, got %d", len(tb.Rows))
	}
	if _, err := tb.Cell(0, 3); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPISharding drives the partition/execute/merge stack and a
// one-worker fleet through the façade: both must reproduce RunScenario
// exactly.
func TestPublicAPISharding(t *testing.T) {
	spec := quorumnet.Scenario{
		Name:       "api-sharded",
		Kind:       "eval",
		Topology:   quorumnet.ScenarioTopology{Source: "planetlab50"},
		Systems:    []quorumnet.ScenarioSystemAxis{{Family: "grid", Params: []int{2, 3}}, {Family: "majority", Params: []int{1, 2}}},
		Demands:    []float64{0},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
	}
	cfg := quorumnet.ScenarioConfig{Reproducible: true}
	base, err := quorumnet.RunScenario(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}

	space, err := quorumnet.PartitionScenario(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space.NumPoints() != 4 {
		t.Fatalf("NumPoints = %d, want 4", space.NumPoints())
	}
	var partials []*quorumnet.ScenarioPartial
	for si := 2; si >= 0; si-- { // reversed completion order
		part, err := space.Shard(si, 3)
		if err != nil {
			t.Fatal(err)
		}
		partial, err := part.Execute()
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, partial)
	}
	merged, err := quorumnet.MergeScenario(&spec, cfg, partials)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Rows, merged.Rows) {
		t.Fatalf("merged rows differ:\n%v\nvs\n%v", base.Rows, merged.Rows)
	}

	srv := httptest.NewServer(quorumnet.NewFleetWorker(quorumnet.FleetWorkerOptions{}).Handler())
	defer srv.Close()
	coord, err := quorumnet.NewFleet(quorumnet.FleetConfig{Workers: []string{srv.URL}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	viaFleet, err := coord.Run(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Rows, viaFleet.Rows) {
		t.Fatalf("fleet rows differ:\n%v\nvs\n%v", base.Rows, viaFleet.Rows)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if got := len(quorumnet.Experiments()); got != 10 {
		t.Errorf("Experiments() = %d figures, want 10", got)
	}
	exp, err := quorumnet.ExperimentByID("fig6.3")
	if err != nil {
		t.Fatal(err)
	}
	p := quorumnet.DefaultExperimentParams()
	p.Quick = true
	tb, err := exp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("empty experiment table")
	}
}

// TestPublicAPIServeRegistry opens two deployments behind one
// ServeRegistry and checks tenant routing plus the legacy alias.
func TestPublicAPIServeRegistry(t *testing.T) {
	mk := func(param int) *quorumnet.Deployment {
		p, err := quorumnet.NewPlanner(quorumnet.PlanetLab50(quorumnet.DefaultSeed), quorumnet.PlannerConfig{
			System:   quorumnet.SystemSpec{Family: "grid", Param: param},
			Strategy: quorumnet.StratClosest,
			Demand:   8000,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := quorumnet.NewDeployment(p, quorumnet.DeployConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	reg := quorumnet.NewServeRegistry(quorumnet.PlanServerOptions{})
	if _, err := quorumnet.OpenDeployment(reg, "core", mk(3)); err != nil {
		t.Fatal(err)
	}
	edge, err := quorumnet.OpenDeployment(reg, "edge", mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if edge.Name() != "edge" {
		t.Fatalf("tenant name %q, want edge", edge.Name())
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	read := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	legacy, core := read("/v1/plan"), read("/v1/deployments/core/plan")
	if legacy != core {
		t.Fatal("legacy /v1/plan is not byte-identical to the default tenant's plan")
	}
	if read("/v1/deployments/edge/plan") == core {
		t.Fatal("edge tenant served the core plan")
	}
}
