package quorumnet_test

import (
	"bytes"
	"math"
	"testing"

	quorumnet "github.com/quorumnet/quorumnet"
)

// TestPublicAPIPipeline exercises the whole public surface end to end:
// topology → system → placement → evaluation → strategy LP → best
// capacity, the way a downstream user would.
func TestPublicAPIPipeline(t *testing.T) {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	if topo.Size() != 50 {
		t.Fatalf("topology size = %d", topo.Size())
	}

	sys, err := quorumnet.NewGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsOneToOne() {
		t.Error("OneToOne returned a many-to-one placement")
	}

	e, err := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(16000))
	if err != nil {
		t.Fatal(err)
	}
	closest := e.AvgResponseTime(quorumnet.Closest)
	balanced := e.AvgResponseTime(quorumnet.Balanced)
	if closest <= 0 || balanced <= 0 {
		t.Fatalf("non-positive response times: %v, %v", closest, balanced)
	}

	values := quorumnet.SweepValues(sys.OptimalLoad(), 5)
	points, err := quorumnet.UniformCapacitySweep(e, values)
	if err != nil {
		t.Fatal(err)
	}
	best, err := quorumnet.BestSweepPoint(points)
	if err != nil {
		t.Fatal(err)
	}
	// The LP with tuned capacity must beat or match both fixed strategies.
	if best.Response > math.Min(closest, balanced)+1e-6 {
		t.Errorf("LP-optimized %v worse than min(closest %v, balanced %v)",
			best.Response, closest, balanced)
	}
}

func TestPublicAPITopologyRoundTrip(t *testing.T) {
	topo := quorumnet.Daxlist161(3)
	var buf bytes.Buffer
	if err := quorumnet.SaveTopology(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := quorumnet.LoadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != topo.Size() || back.Name() != topo.Name() {
		t.Errorf("round trip mismatch: %d/%s", back.Size(), back.Name())
	}
}

func TestPublicAPIProtocol(t *testing.T) {
	topo := quorumnet.PlanetLab50(2)
	sys, err := quorumnet.QUMajority(1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := quorumnet.RunProtocol(quorumnet.ProtocolConfig{
		Topo:          topo,
		ServerSites:   f.Targets(),
		QuorumSize:    sys.QuorumSize(),
		ClientSites:   []int{0, 10, 20},
		ServiceTimeMS: 1,
		DurationMS:    3000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.AvgResponseMS < m.AvgNetDelayMS {
		t.Errorf("implausible metrics: %+v", m)
	}
}

func TestPublicAPIIterate(t *testing.T) {
	topo := quorumnet.PlanetLab50(4)
	sys, err := quorumnet.NewGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := quorumnet.Iterate(topo, sys, quorumnet.IterateConfig{
		MaxIterations: 2,
		Candidates:    []int{0, 10, 20, 30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || res.Strategy == nil {
		t.Error("iterate returned empty result")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if got := len(quorumnet.Experiments()); got != 10 {
		t.Errorf("Experiments() = %d figures, want 10", got)
	}
	exp, err := quorumnet.ExperimentByID("fig6.3")
	if err != nil {
		t.Fatal(err)
	}
	p := quorumnet.DefaultExperimentParams()
	p.Quick = true
	tb, err := exp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("empty experiment table")
	}
}
