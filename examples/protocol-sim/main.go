// Protocol-sim: drive the Q/U-style quorum protocol simulator directly,
// reproducing the §3 observation that response time tracks network delay
// at light load and processing/queueing delay once demand grows.
package main

import (
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)

	// Q/U with t = 2: n = 11 servers, quorums of 9. Place the servers at
	// the delay-minimizing sites.
	sys, err := quorumnet.QUMajority(2)
	if err != nil {
		log.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q/U t=2: %d servers on sites %v, quorum size %d\n\n",
		sys.UniverseSize(), f.Support(), sys.QuorumSize())

	// Ten client sites; scale the per-site client count.
	clientSites := []int{2, 7, 12, 17, 22, 27, 32, 37, 42, 47}
	fmt.Println("clients   net delay    response   max queueing")
	for _, perSite := range []int{1, 3, 6, 10} {
		var clients []int
		for _, s := range clientSites {
			for i := 0; i < perSite; i++ {
				clients = append(clients, s)
			}
		}
		m, err := quorumnet.RunProtocolAveraged(quorumnet.ProtocolConfig{
			Topo:          topo,
			ServerSites:   f.Targets(),
			QuorumSize:    sys.QuorumSize(),
			ClientSites:   clients,
			ServiceTimeMS: 1,
			LinkTxMS:      0.8, // 10 Mbit/s access links, ~1 KB messages
			DurationMS:    20000,
			Seed:          quorumnet.DefaultSeed,
		}, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d   %7.2f ms   %7.2f ms   %7.2f ms\n",
			len(clients), m.AvgNetDelayMS, m.AvgResponseMS, m.MaxServerQueueMS)
	}
	fmt.Println("\nnetwork delay stays flat; queueing and link serialization grow with demand.")
}
