// Failure-analysis: quantify the fault-tolerance argument behind §6. The
// paper accepts a response-time premium for quorum systems because they
// survive node failures; this example measures both sides of that trade —
// response time under accumulating worst-case failures, and availability
// under independent node failures — for the singleton baseline and two
// quorum constructions.
package main

import (
	"errors"
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)

	grid, err := quorumnet.NewGrid(5)
	if err != nil {
		log.Fatal(err)
	}
	maj, err := quorumnet.SimpleMajority(12) // majority(13,25)
	if err != nil {
		log.Fatal(err)
	}
	systems := []quorumnet.System{quorumnet.SingletonSystem{}, grid, maj}

	fmt.Println("system            resilience   f=0       f=1       f=2       f=3      avail(p=0.10)")
	for _, sys := range systems {
		var f quorumnet.Placement
		if _, ok := sys.(quorumnet.SingletonSystem); ok {
			f, err = quorumnet.SingletonPlacement(topo, 1)
		} else {
			f, err = quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
		}
		if err != nil {
			log.Fatal(err)
		}
		e, err := quorumnet.NewEval(topo, sys, f, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-17s %10d", sys.Name(), quorumnet.FailureResilience(sys))
		for nf := 0; nf <= 3; nf++ {
			failed := quorumnet.WorstCaseFailure(e, nf)
			fe, err := quorumnet.ApplyFailures(e, failed)
			switch {
			case errors.Is(err, quorumnet.ErrNoQuorumSurvives):
				fmt.Printf("   %7s", "down")
				continue
			case err != nil:
				log.Fatal(err)
			}
			fmt.Printf("   %7.2f", fe.AvgNetworkDelay(quorumnet.Closest))
		}
		avail, err := quorumnet.Availability(e, 0.10, 100000, quorumnet.DefaultSeed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("        %.4f\n", avail)
	}

	fmt.Println("\nThe singleton answers fastest but a single failure takes it down;")
	fmt.Println("the quorum systems pay a few milliseconds and keep serving.")
}
