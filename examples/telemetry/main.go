// Telemetry: the closed loop from measurement to plan, in one process.
// Part 1 runs a 9-site RTT probe mesh (fake transport, deterministic
// noise) against a live deployment: the smoothing/hysteresis stack
// absorbs jitter and spikes so a stationary network converges to
// silence, while a genuine 3× drift on one link flows through and
// re-plans. Part 2 replays the flash-crowd library workload as the
// exact delta stream the scenario engine would apply, watching the
// deployment's version history track the timeline step by step.
package main

import (
	"context"
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	ctx := context.Background()
	probeMesh(ctx)
	fmt.Println()
	replayWorkload(ctx)
}

// probeMesh wires agents -> batcher -> deployment and shows the two
// hysteresis layers doing their jobs.
func probeMesh(ctx context.Context) {
	topo, err := quorumnet.GenerateTopology(quorumnet.TopologyConfig{
		Name:      "mesh-9",
		Inflation: 1.4,
		Regions: []quorumnet.RegionSpec{
			{Name: "west", Count: 3, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 3, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 3, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	p, err := quorumnet.NewPlanner(topo, quorumnet.PlannerConfig{
		System:       quorumnet.SystemSpec{Family: "grid", Param: 2},
		Strategy:     quorumnet.StratLP,
		Demand:       8000,
		Reproducible: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	dep, err := quorumnet.NewDeployment(p, quorumnet.DeployConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// A fake mesh whose ground truth is the deployed topology, plus
	// deterministic noise: ±0.4ms jitter and a 25ms spike every 7th
	// measurement — the retransmit blips of a real WAN.
	snap := dep.Current().Snapshot
	mesh := quorumnet.NewFakeMesh(1)
	names := make([]string, snap.Topology.Size())
	for i := range names {
		names[i] = snap.Topology.Site(i).Name
	}
	for i := 0; i < snap.Topology.Size(); i++ {
		for j := i + 1; j < snap.Topology.Size(); j++ {
			mesh.SetRTT(names[i], names[j], snap.Topology.RTT(i, j))
		}
	}
	mesh.SetNoiseFunc(func(a, b string, n int) float64 {
		if n%7 == 0 {
			return 25 // spike: the MAD gate should eat this
		}
		return 0.4 * float64(n%5-2) / 2 // jitter inside the emission band
	})

	batcher := quorumnet.NewDeltaBatcher(quorumnet.ManagerDeltaPoster{M: dep})
	agents := make([]*quorumnet.ProbeAgent, 0, len(names))
	for _, site := range names {
		var peers []string
		for _, other := range names {
			if other != site {
				peers = append(peers, other)
			}
		}
		a, err := quorumnet.NewProbeAgent(quorumnet.ProbeAgentConfig{
			Site:      site,
			Peers:     peers,
			Transport: mesh.Transport(site),
			Smoother:  quorumnet.ProbeSmoother{Window: 5},
		})
		if err != nil {
			log.Fatal(err)
		}
		agents = append(agents, a)
	}

	// Rounds are driven synchronously here for determinism; quorumprobe
	// runs the same agents on a timer against real UDP echo sockets.
	round := func() {
		for _, a := range agents {
			ds, err := a.Round(ctx)
			if err != nil {
				log.Fatal(err)
			}
			batcher.Add(ds...)
		}
		if _, err := batcher.Flush(ctx); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("== probe mesh: 9 sites, noisy but stationary ==")
	for r := 0; r < 30; r++ {
		round()
	}
	cur := dep.Current().Snapshot
	fmt.Printf("after 30 noisy rounds: version %d, %d placement moves, response %.2f ms\n",
		cur.Version, placementMoves(dep), cur.Response)
	fmt.Println("(jitter stayed inside the emission band; spikes died at the MAD gate)")

	// Now a real event: the transatlantic backbone browns out — every
	// eu link triples. The shift detector flushes the stale windows, the
	// new medians clear the emission band, and the deployment re-plans.
	for i := 0; i < 6; i++ {
		for j := 6; j < 9; j++ {
			mesh.SetRTT(names[i], names[j], 3*snap.Topology.RTT(i, j))
		}
	}
	for r := 0; r < 10; r++ {
		round()
	}
	cur = dep.Current().Snapshot
	fmt.Printf("after the eu links tripled: version %d, %d placement moves, response %.2f ms\n",
		cur.Version, placementMoves(dep), cur.Response)
}

// replayWorkload compiles the flash-crowd timeline into delta batches
// and applies them to a deployment seeded the way quorumgen -describe
// prescribes — the in-process twin of quorumgen posting to quorumd.
func replayWorkload(ctx context.Context) {
	var spec *quorumnet.Scenario
	for _, s := range quorumnet.ScenarioLibrary() {
		if s.Name == "flash-crowd" {
			spec = &s
			break
		}
	}
	if spec == nil {
		log.Fatal("flash-crowd not in the scenario library")
	}
	cfg := quorumnet.ScenarioConfig{Seed: 1, Reproducible: true}

	p, err := quorumnet.TimelinePlanner(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := quorumnet.NewDeployment(p, quorumnet.DeployConfig{})
	if err != nil {
		log.Fatal(err)
	}
	steps, err := quorumnet.TimelineStream(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== flash-crowd replay: the engine's deltas over the deploy wire ==")
	poster := quorumnet.ManagerDeltaPoster{M: dep}
	start := dep.Current().Snapshot
	fmt.Printf("%-18s version %2d  response %7.2f ms\n", "initial", start.Version, start.Response)
	for _, step := range steps {
		if err := poster.Post(ctx, step.Deltas); err != nil {
			log.Fatalf("step %q: %v", step.Label, err)
		}
		snap := dep.Current().Snapshot
		fmt.Printf("%-18s version %2d  response %7.2f ms  (%d deltas)\n",
			step.Label, snap.Version, snap.Response, len(step.Deltas))
	}
	fmt.Println("(same stream, same seed => the journaled history matches the")
	fmt.Println(" scenario engine's table — the quorumgen test suite asserts it)")
}

// placementMoves counts history entries whose placement differs from
// the previous version's.
func placementMoves(dep *quorumnet.Deployment) int {
	hist := dep.History()
	moves := 0
	for i := 1; i < len(hist); i++ {
		if fmt.Sprint(hist[i-1].Snapshot.Placement.Targets()) != fmt.Sprint(hist[i].Snapshot.Placement.Targets()) {
			moves++
		}
	}
	return moves
}
