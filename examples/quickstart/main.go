// Quickstart: place a Grid quorum system on a synthetic PlanetLab-like
// topology and compare the closest and balanced access strategies at low
// and high client demand.
package main

import (
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	// A 50-site wide-area topology with realistic RTT structure. The same
	// seed always yields the same topology.
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	fmt.Printf("topology: %s, %d sites, avg RTT %.1f ms\n\n",
		topo.Name(), topo.Size(), topo.AvgRTT())

	// A 5×5 Grid quorum system: 25 logical elements, quorums of 9.
	sys, err := quorumnet.NewGrid(5)
	if err != nil {
		log.Fatal(err)
	}

	// Place it one-to-one with the paper's shell construction, anchored
	// at the best of all candidate sites.
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %s on sites %v\n\n", sys.Name(), f.Support())

	// Evaluate response time at three demand levels.
	for _, demand := range []float64{0, 1000, 16000} {
		e, err := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(demand))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("demand %6.0f req: closest %7.2f ms   balanced %7.2f ms\n",
			demand,
			e.AvgResponseTime(quorumnet.Closest),
			e.AvgResponseTime(quorumnet.Balanced))
	}
	fmt.Println("\nclosest wins at low demand; balanced wins once load dominates.")
}
