// Serve: the quorumd serving layer end to end, in one process. The
// program starts a deployment manager (a 4×4 Grid on PlanetLab-50 with
// LP strategies and placement-move hysteresis) behind the HTTP serving
// layer, then plays a monitoring client against it: reading the current
// versioned plan, posting demand telemetry and RTT probes as delta
// batches, and long-polling for the next published version. Run a
// standalone daemon with `go run ./cmd/quorumd` and the same requests
// work over the wire.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	// --- daemon side -------------------------------------------------
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	p, err := quorumnet.NewPlanner(topo, quorumnet.PlannerConfig{
		System:   quorumnet.SystemSpec{Family: "grid", Param: 4},
		Strategy: quorumnet.StratLP,
		Demand:   8000,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := quorumnet.NewDeployment(p, quorumnet.DeployConfig{MoveCost: 5})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(quorumnet.NewPlanServer(mgr, quorumnet.PlanServerOptions{}).Handler())
	defer ts.Close()
	fmt.Printf("quorumd serving at %s\n\n", ts.URL)

	// --- client side -------------------------------------------------
	var plan struct {
		Version    uint64  `json:"version"`
		System     string  `json:"system"`
		ResponseMS float64 `json:"response_ms"`
		Provenance struct {
			Summary  string `json:"summary"`
			Decision string `json:"decision"`
		} `json:"provenance"`
	}
	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-28s -> v%d %s response %.2fms [%s / %s]\n",
			path, plan.Version, plan.System, plan.ResponseMS,
			plan.Provenance.Summary, plan.Provenance.Decision)
	}
	post := func(deltas string) {
		resp, err := http.Post(ts.URL+"/v1/deltas", "application/json",
			bytes.NewReader([]byte(`{"deltas":[`+deltas+`]}`)))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Version    uint64 `json:"version"`
			Provenance struct {
				Summary  string `json:"summary"`
				Decision string `json:"decision"`
			} `json:"provenance"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("POST deltas %-24s -> v%d [%s / %s]\n",
			deltas[:min(24, len(deltas))], out.Version, out.Provenance.Summary, out.Provenance.Decision)
	}

	// The initial plan.
	get("/v1/plan")

	// Demand telemetry: the midday peak. Eval-only re-plan — the
	// placement and LP strategy are reused untouched.
	post(`{"kind":"demand","value":16000}`)

	// A long-poll rides the version stream: it blocks until the next
	// delta publishes a newer snapshot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(fmt.Sprintf("/v1/plan?after=%d&timeout=10s", plan.Version+1))
	}()
	time.Sleep(50 * time.Millisecond)

	// An RTT probe reports a slow transatlantic link: topology re-closes
	// and the hysteresis decides whether the placement move pays.
	post(`{"kind":"rtt","a":"na-east-00","b":"europe-00","value":220}`)
	<-done

	// The re-plan history, newest first.
	resp, err := http.Get(ts.URL + "/v1/history?limit=5")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var hist struct {
		Snapshots []struct {
			Version    uint64 `json:"version"`
			Provenance struct {
				Decision string `json:"decision"`
			} `json:"provenance"`
		} `json:"snapshots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhistory (newest first):")
	for _, h := range hist.Snapshots {
		fmt.Printf("  v%-3d %s\n", h.Version, h.Provenance.Decision)
	}
}
