// Serve: the quorumd multi-tenant serving plane end to end, in one
// process. The program opens two named deployments — "core", a 4×4
// Grid on PlanetLab-50 with LP strategies, and "edge", a 3×3 Grid on a
// synthesized two-region WAN — behind one ServeRegistry, then plays a
// monitoring client against it: listing the roster, reading each
// tenant's versioned plan, posting demand telemetry and RTT probes to
// one tenant without disturbing the other, and long-polling for the
// next published version. The legacy single-tenant routes (/v1/plan,
// /v1/deltas, /v1/history) still work and alias the default
// (first-opened) tenant byte-identically. Run a standalone daemon with
// `go run ./cmd/quorumd -deployment core -deployment edge:system=grid:3`
// and the same requests work over the wire.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	quorumnet "github.com/quorumnet/quorumnet"
)

func openTenant(reg *quorumnet.ServeRegistry, name string, topo *quorumnet.Topology, cfg quorumnet.PlannerConfig) {
	p, err := quorumnet.NewPlanner(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := quorumnet.NewDeployment(p, quorumnet.DeployConfig{MoveCost: 5})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := quorumnet.OpenDeployment(reg, name, mgr); err != nil {
		log.Fatal(err)
	}
}

func main() {
	// --- daemon side -------------------------------------------------
	reg := quorumnet.NewServeRegistry(quorumnet.PlanServerOptions{})

	// Tenant "core": the paper's PlanetLab WAN, LP strategies. Opened
	// first, so the legacy single-tenant routes alias it.
	openTenant(reg, "core", quorumnet.PlanetLab50(quorumnet.DefaultSeed), quorumnet.PlannerConfig{
		System:   quorumnet.SystemSpec{Family: "grid", Param: 4},
		Strategy: quorumnet.StratLP,
		Demand:   8000,
	})

	// Tenant "edge": a smaller synthesized WAN with closest-quorum
	// strategies — an independent deployment sharing the process.
	edgeTopo, err := quorumnet.GenerateTopology(quorumnet.TopologyConfig{
		Name:      "edge-wan",
		Inflation: 1.4,
		Regions: []quorumnet.RegionSpec{
			{Name: "west", Count: 6, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 6, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
		},
	}, quorumnet.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	openTenant(reg, "edge", edgeTopo, quorumnet.PlannerConfig{
		System:   quorumnet.SystemSpec{Family: "grid", Param: 3},
		Strategy: quorumnet.StratClosest,
		Demand:   4000,
	})

	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	fmt.Printf("quorumd serving at %s\n\n", ts.URL)

	// --- client side -------------------------------------------------
	var plan struct {
		Version    uint64  `json:"version"`
		System     string  `json:"system"`
		ResponseMS float64 `json:"response_ms"`
		Provenance struct {
			Summary  string `json:"summary"`
			Decision string `json:"decision"`
		} `json:"provenance"`
	}
	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET %-42s -> v%d %s response %.2fms [%s / %s]\n",
			path, plan.Version, plan.System, plan.ResponseMS,
			plan.Provenance.Summary, plan.Provenance.Decision)
	}
	post := func(tenant, deltas string) {
		resp, err := http.Post(ts.URL+"/v1/deployments/"+tenant+"/deltas", "application/json",
			bytes.NewReader([]byte(`{"deltas":[`+deltas+`]}`)))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Version    uint64 `json:"version"`
			Provenance struct {
				Summary  string `json:"summary"`
				Decision string `json:"decision"`
			} `json:"provenance"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("POST %s deltas %-24s -> v%d [%s / %s]\n",
			tenant, deltas[:min(24, len(deltas))], out.Version, out.Provenance.Summary, out.Provenance.Decision)
	}

	// The roster: every tenant, its version, and which one is default.
	resp, err := http.Get(ts.URL + "/v1/deployments")
	if err != nil {
		log.Fatal(err)
	}
	var roster struct {
		Deployments []struct {
			Name    string `json:"name"`
			Version uint64 `json:"version"`
			System  string `json:"system"`
			Default bool   `json:"default"`
		} `json:"deployments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("roster:")
	for _, d := range roster.Deployments {
		def := ""
		if d.Default {
			def = "  (default — legacy /v1/plan aliases this)"
		}
		fmt.Printf("  %-6s v%d %s%s\n", d.Name, d.Version, d.System, def)
	}
	fmt.Println()

	// Each tenant's initial plan; the legacy route is the default tenant.
	get("/v1/deployments/core/plan")
	get("/v1/deployments/edge/plan")
	get("/v1/plan") // byte-identical to /v1/deployments/core/plan

	// Demand telemetry for core only: edge's version is untouched.
	post("core", `{"kind":"demand","value":16000}`)
	get("/v1/deployments/edge/plan")

	// A long-poll rides core's version stream: it blocks until the next
	// delta publishes a newer snapshot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(fmt.Sprintf("/v1/deployments/core/plan?after=%d&timeout=10s", plan.Version+2))
	}()
	time.Sleep(50 * time.Millisecond)

	// An RTT probe reports a slow transatlantic link: topology re-closes
	// and the hysteresis decides whether the placement move pays.
	post("core", `{"kind":"rtt","a":"na-east-00","b":"europe-00","value":220}`)
	<-done

	// Core's re-plan history, newest first.
	resp, err = http.Get(ts.URL + "/v1/deployments/core/history?limit=5")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var hist struct {
		Snapshots []struct {
			Version    uint64 `json:"version"`
			Provenance struct {
				Decision string `json:"decision"`
			} `json:"provenance"`
		} `json:"snapshots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncore history (newest first):")
	for _, h := range hist.Snapshots {
		fmt.Printf("  v%-3d %s\n", h.Version, h.Provenance.Decision)
	}
}
