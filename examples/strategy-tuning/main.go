// Strategy-tuning: a deep dive into §7's techniques on a fixed placement —
// the capacity sweep with LP-optimized access strategies, and the
// non-uniform capacity heuristic that sets each node's capacity inversely
// proportional to its average distance from clients.
package main

import (
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	sys, err := quorumnet.NewGrid(7) // 49 elements, the paper's Figure 7.8 setting
	if err != nil {
		log.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(16000))
	if err != nil {
		log.Fatal(err)
	}

	lopt := sys.OptimalLoad()
	fmt.Printf("grid 7x7 on %s, demand 16000, Lopt = %.3f\n\n", topo.Name(), lopt)
	fmt.Println("capacity   uniform-caps (net / resp)   non-uniform caps (net / resp)")

	values := quorumnet.SweepValues(lopt, 10)
	uni, err := quorumnet.UniformCapacitySweep(e, values)
	if err != nil {
		log.Fatal(err)
	}
	non, err := quorumnet.NonUniformCapacitySweep(e, lopt, values)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range values {
		fmt.Printf("%8.3f   %s   %s\n", c, fmtPoint(uni[i]), fmtPoint(non[i]))
	}

	bu, err := quorumnet.BestSweepPoint(uni)
	if err != nil {
		log.Fatal(err)
	}
	bn, err := quorumnet.BestSweepPoint(non)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest uniform:     %.2f ms at capacity %.3f\n", bu.Response, bu.Cap)
	fmt.Printf("best non-uniform: %.2f ms at capacity %.3f\n", bn.Response, bn.Cap)
	fmt.Println("\nlow capacities force load dispersion (lower response under high demand);")
	fmt.Println("the non-uniform heuristic keeps distant nodes lightly loaded as capacity grows.")
}

func fmtPoint(p quorumnet.SweepPoint) string {
	if p.Infeasible {
		return "   infeasible          "
	}
	return fmt.Sprintf("%7.2f / %7.2f ms   ", p.NetDelay, p.Response)
}
