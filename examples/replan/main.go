// Replan: incremental re-planning with the staged Planner. A 5×5 Grid
// deployment on PlanetLab-50 rides out a day of wide-area weather — RTT
// drift on the transatlantic links, a demand spike, and a regional
// outage — and after each delta the planner recomputes only the pipeline
// stages the delta invalidated: demand changes re-run just the
// evaluation, capacity changes re-solve the strategy LP warm-started
// from the previous basis, and membership changes re-place the grid.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	p, err := quorumnet.NewPlanner(topo, quorumnet.PlannerConfig{
		System:   quorumnet.SystemSpec{Family: "grid", Param: 5},
		Strategy: quorumnet.StratLP,
		Demand:   8000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("event                sites  response  netdelay  replan     recomputed stages")
	report := func(label string) {
		start := time.Now()
		res, err := p.Plan()
		if err != nil {
			log.Fatal(err)
		}
		stages := strings.Join(res.RecomputedNames(), ",")
		if stages == "" {
			stages = "(nothing)"
		}
		fmt.Printf("%-20s %5d  %7.2f  %8.2f  %8s  %s\n",
			label, p.Size(), res.Response, res.NetDelay,
			time.Since(start).Round(10*time.Microsecond), stages)
	}

	// Cold plan: every stage runs.
	report("initial")

	// RTT drift: congestion inflates every link touching Europe by 30%.
	// The raw metric changes, so the topology re-closes and placement,
	// strategy, and evaluation all re-run.
	scaleRegion(p, "europe", 1.3)
	report("rtt-drift eu x1.3")

	// Demand spike: only the evaluation stage re-runs — the placement and
	// the LP-optimized strategy are reused untouched.
	if err := p.SetDemand(16000); err != nil {
		log.Fatal(err)
	}
	report("demand-spike 16k")

	// Capacity re-tune: the operator grants the sites more headroom. The
	// LP skeleton is reused and the solve warm-starts from the previous
	// optimal basis — a handful of pivots, not a cold solve.
	if err := p.SetUniformCapacity(0.9); err != nil {
		log.Fatal(err)
	}
	report("capacity 0.90")

	// Regional outage: every European site goes dark. The planner
	// re-places the grid on the surviving 35 sites.
	for _, name := range sitesInRegion(p, "europe") {
		if err := p.RemoveSite(name); err != nil {
			log.Fatal(err)
		}
	}
	report("eu-outage")

	// Recovery of demand after failover traffic is shed elsewhere.
	if err := p.SetDemand(8000); err != nil {
		log.Fatal(err)
	}
	report("demand-normal 8k")
}

// scaleRegion multiplies the raw RTT of every link with at least one
// endpoint in the region.
func scaleRegion(p *quorumnet.Planner, region string, factor float64) {
	n := p.Size()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if p.Site(u).Region != region && p.Site(v).Region != region {
				continue
			}
			if err := p.SetRTT(u, v, p.RTT(u, v)*factor); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func sitesInRegion(p *quorumnet.Planner, region string) []string {
	var names []string
	for i := 0; i < p.Size(); i++ {
		if p.Site(i).Region == region {
			names = append(names, p.Site(i).Name)
		}
	}
	return names
}
