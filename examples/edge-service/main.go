// Edge-service: the scenario from the paper's introduction. A dynamic
// service is deployed on a set of edge proxies using a quorum system for
// coordination. This example answers the deployment questions the paper
// poses: how many proxies, which quorum construction, and how should
// clients access quorums — at low and at high client demand.
package main

import (
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

func main() {
	topo := quorumnet.Daxlist161(quorumnet.DefaultSeed)
	fmt.Printf("edge platform: %d candidate proxy sites (%s)\n\n", topo.Size(), topo.Name())

	fmt.Println("--- choosing the construction and scale (low demand, alpha=0) ---")
	type option struct {
		name string
		sys  quorumnet.System
	}
	var options []option
	for _, k := range []int{3, 5, 8} {
		g, err := quorumnet.NewGrid(k)
		if err != nil {
			log.Fatal(err)
		}
		options = append(options, option{fmt.Sprintf("grid %dx%d", k, k), g})
	}
	for _, t := range []int{2, 6} {
		m, err := quorumnet.SimpleMajority(t)
		if err != nil {
			log.Fatal(err)
		}
		options = append(options, option{fmt.Sprintf("majority(%d,%d)", t+1, 2*t+1), m})
	}

	for _, opt := range options {
		f, err := quorumnet.OneToOne(topo, opt.sys, quorumnet.PlacementOptions{})
		if err != nil {
			log.Fatal(err)
		}
		e, err := quorumnet.NewEval(topo, opt.sys, f, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %3d proxies, quorum %2d: %6.2f ms (closest access)\n",
			opt.name, opt.sys.UniverseSize(), opt.sys.QuorumSize(),
			e.AvgNetworkDelay(quorumnet.Closest))
	}

	// The paper's low-demand conclusion: small quorums cost only a little
	// over a single server while tolerating faults.
	single, err := quorumnet.SingletonPlacement(topo, 1)
	if err != nil {
		log.Fatal(err)
	}
	eS, err := quorumnet.NewEval(topo, quorumnet.SingletonSystem{}, single, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s   1 proxy            : %6.2f ms (no fault tolerance)\n\n",
		"singleton", eS.AvgNetworkDelay(quorumnet.Closest))

	fmt.Println("--- tuning access under high demand (16000 req, grid 8x8) ---")
	sys, err := quorumnet.NewGrid(8)
	if err != nil {
		log.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(16000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest access:  %6.2f ms\n", e.AvgResponseTime(quorumnet.Closest))
	fmt.Printf("balanced access: %6.2f ms\n", e.AvgResponseTime(quorumnet.Balanced))

	// LP-optimized strategies with a tuned uniform capacity beat both.
	values := quorumnet.SweepValues(sys.OptimalLoad(), 10)
	points, err := quorumnet.UniformCapacitySweep(e, values)
	if err != nil {
		log.Fatal(err)
	}
	best, err := quorumnet.BestSweepPoint(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP-optimized:    %6.2f ms (uniform capacity %.3f)\n", best.Response, best.Cap)
}
